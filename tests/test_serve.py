"""Tests for repro.serve: batched scoring parity, caching, cold start.

The facade's contract: ``recommend`` over a cohort answers exactly what
the per-user serial path would answer (same scores, same masking, same
grading by the ranking evaluator), just computed as one batched pass.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.artifacts import CheckpointEveryK
from repro.eval.ranking import RankingEvaluator
from repro.experiments import ExperimentSpec, create_trainer
from repro.models.mf import MatrixFactorization
from repro.models.popularity import PopularityRecommender
from repro.serve import Recommender, batch_scores


def served_spec(trainer: str = "ptf", **overrides) -> ExperimentSpec:
    base = dict(
        trainer=trainer,
        seed=29,
        embedding_dim=8,
        rounds=2,
        client_local_epochs=1,
        server_epochs=1,
        alpha=10,
    )
    base.update(overrides)
    trainer = base.pop("trainer")
    seed = base.pop("seed")
    return ExperimentSpec.from_flat(trainer=trainer, seed=seed, **base)


@pytest.fixture
def trained(tiny_dataset):
    """A trained PTF adapter + its serving facade."""
    adapter = create_trainer(served_spec(), tiny_dataset).fit()
    return adapter, Recommender.from_trainer(adapter, tiny_dataset)


# ----------------------------------------------------------------------
# Batched scoring parity with the serial per-user path
# ----------------------------------------------------------------------
class TestBatchScores:
    # Covers every closed form (mf via fcf, metamf, graph via ptf/ngcf)
    # plus the flat all-pairs fallback (neumf via centralized).
    @pytest.mark.parametrize("trainer,overrides", [
        ("ptf", {"server_model": "ngcf"}),
        ("ptf", {"server_model": "lightgcn"}),
        ("fcf", {}),
        ("metamf", {}),
        ("centralized", {"server_model": "neumf"}),
        ("centralized", {"server_model": "mf"}),
    ])
    def test_matches_score_all_items(self, trainer, overrides, tiny_dataset):
        adapter = create_trainer(served_spec(trainer, **overrides), tiny_dataset).fit()
        model = adapter.serving_model()
        users = np.asarray(tiny_dataset.users[:8], dtype=np.int64)
        matrix = batch_scores(model, users)
        assert matrix.shape == (users.size, model.num_items)
        # The closed forms run the same arithmetic as the per-user tensor
        # pass under float64; under float32 the BLAS cohort matmul may
        # accumulate in a different order, so compare at dtype precision.
        dtype = next(iter(model.parameters())).dtype
        tolerance = (
            dict(rtol=1e-10, atol=1e-12) if dtype == np.float64
            else dict(rtol=1e-4, atol=1e-6)
        )
        for row, user in zip(matrix, users):
            np.testing.assert_allclose(
                row, model.score_all_items(int(user)), **tolerance
            )

    def test_out_of_range_user_raises(self, trained):
        adapter, _ = trained
        with pytest.raises(IndexError):
            batch_scores(adapter.serving_model(), np.array([10_000]))

    def test_empty_cohort(self, trained):
        adapter, _ = trained
        matrix = batch_scores(adapter.serving_model(), np.array([], dtype=np.int64))
        assert matrix.shape == (0, adapter.serving_model().num_items)


# ----------------------------------------------------------------------
# The service facade
# ----------------------------------------------------------------------
class TestRecommender:
    def test_recommend_shapes(self, trained):
        _, service = trained
        batch = service.recommend([0, 1, 2], k=5)
        assert batch.shape == (3, 5)
        single = service.recommend(0, k=5)
        assert single.shape == (5,)
        np.testing.assert_array_equal(single, batch[0])

    def test_recommend_excludes_seen(self, trained, tiny_dataset):
        _, service = trained
        users = tiny_dataset.users[:10]
        ranked = service.recommend(users, k=10)
        for row, user in zip(ranked, users):
            assert not set(row.tolist()) & set(tiny_dataset.train_items(user).tolist())

    def test_recommend_can_include_seen(self, trained):
        _, service = trained
        ranked = service.recommend([0], k=service.num_items, exclude_seen=False)
        assert sorted(ranked[0].tolist()) == list(range(service.num_items))

    def test_matches_serial_model_recommend(self, trained, tiny_dataset):
        """Cohort answers == the per-user serial baseline's answers."""
        adapter, service = trained
        model = adapter.serving_model()
        users = tiny_dataset.users[:10]
        batched = service.recommend(users, k=10)
        for row, user in zip(batched, users):
            serial = model.recommend(
                user, k=10, exclude_items=tiny_dataset.train_items(user)
            )
            np.testing.assert_array_equal(row, serial)

    def test_served_topk_grades_like_the_evaluator(self, trained, tiny_dataset):
        """Grading served lists with result_for_recommendations reproduces
        the training-time evaluation exactly."""
        adapter, service = trained
        evaluator = RankingEvaluator(tiny_dataset, k=10)
        users = tiny_dataset.users
        served = {user: service.recommend(user, k=10) for user in users}
        graded = evaluator.evaluate_recommendation_lists(served)
        reference = evaluator.evaluate(adapter.serving_model(), users=users)
        assert graded == reference


class TestColdStart:
    def test_unknown_user_gets_popularity(self, trained, tiny_dataset):
        _, service = trained
        cold_user = 10_000
        ranked = service.recommend(cold_user, k=5)
        reference = PopularityRecommender(1, tiny_dataset.num_items)
        reference.fit(tiny_dataset.item_popularity())
        np.testing.assert_array_equal(ranked, reference.recommend(0, k=5))

    def test_user_without_interactions_is_cold(self, trained, tiny_dataset):
        """An in-range user absent from seen_items is cold, not personalized."""
        adapter, _ = trained
        missing = tiny_dataset.users[0]
        seen = {user: tiny_dataset.train_items(user)
                for user in tiny_dataset.users if user != missing}
        service = Recommender(
            adapter.serving_model(), seen_items=seen,
            popularity=tiny_dataset.item_popularity(),
        )
        reference = PopularityRecommender(1, tiny_dataset.num_items)
        reference.fit(tiny_dataset.item_popularity())
        np.testing.assert_array_equal(
            service.scores(missing)[0], reference.score_all_items(0)
        )
        # ...while a user that *is* in seen_items gets model scores.
        warm = tiny_dataset.users[1]
        np.testing.assert_allclose(
            service.scores(warm)[0],
            adapter.serving_model().score_all_items(warm),
            rtol=1e-10, atol=1e-12,
        )

    def test_unknown_user_without_fallback_raises(self, trained):
        adapter, _ = trained
        bare = Recommender(adapter.serving_model())
        with pytest.raises(IndexError, match="unknown"):
            bare.scores(10_000)


class TestColdStats:
    def test_cold_lookups_do_not_count_as_cache_misses(self, trained):
        """Cold rows are never cacheable, so cold traffic must not skew
        the LRU hit-rate statistics (regression: ``_cache_get`` used to be
        consulted before ``_is_cold``)."""
        _, service = trained
        cold_user = 10_000
        service.scores([cold_user])
        service.scores([cold_user])
        assert service.cold_hits == 2
        assert (service.cache_hits, service.cache_misses) == (0, 0)

    def test_mixed_cohort_splits_the_counters(self, trained):
        _, service = trained
        service.scores([0, 10_000, 1])
        assert service.cold_hits == 1
        assert (service.cache_hits, service.cache_misses) == (0, 2)
        service.scores([0, 10_000])
        assert service.cold_hits == 2
        assert (service.cache_hits, service.cache_misses) == (1, 2)


class TestScoreCache:
    def test_repeat_queries_hit_the_cache(self, trained):
        _, service = trained
        first = service.scores([0, 1])
        assert (service.cache_hits, service.cache_misses) == (0, 2)
        second = service.scores([0, 1])
        assert service.cache_hits == 2
        np.testing.assert_array_equal(first, second)

    def test_lru_evicts_oldest(self, trained, tiny_dataset):
        adapter, _ = trained
        service = Recommender.from_trainer(adapter, tiny_dataset, cache_size=2)
        service.scores([0]); service.scores([1]); service.scores([2])
        service.scores([0])  # 0 was evicted by 2 -> a miss again
        assert service.cache_hits == 0
        assert service.cache_misses == 4

    def test_duplicate_users_in_one_query(self, trained):
        _, service = trained
        rows = service.scores([3, 3, 3])
        np.testing.assert_array_equal(rows[0], rows[1])
        np.testing.assert_array_equal(rows[0], rows[2])
        assert service.cache_misses == 1

    def test_clear_cache(self, trained):
        _, service = trained
        service.scores([0])
        service.clear_cache()
        service.scores([0])
        assert service.cache_misses == 2


class TestReload:
    """reload() invalidates exactly what changed — the model-swap path."""

    def test_model_swap_drops_cache_and_keeps_counters(self, trained, tiny_dataset):
        adapter, service = trained
        service.scores([0, 1])
        assert service.cache_misses == 2
        retrained = create_trainer(served_spec(rounds=4), tiny_dataset).fit()
        service.reload(retrained.serving_model())
        # Cached rows belonged to the old model: the next query recomputes.
        rows = service.scores([0, 1])
        assert service.cache_misses == 4
        np.testing.assert_array_equal(
            rows, Recommender.from_trainer(retrained, tiny_dataset).scores([0, 1])
        )
        # Lifetime counters survive the swap (they describe the service).
        assert service.cache_hits == 0

    def test_clear_cache_alone_leaves_fallback_stale(self, trained, tiny_dataset):
        """The regression reload() exists for: after a swap, the popularity
        fallback row is memoised against the *old* artifact, and
        clear_cache() does not touch it."""
        _, service = trained
        stale_cold = service.scores([10_000])[0]
        service.clear_cache()
        np.testing.assert_array_equal(service.scores([10_000])[0], stale_cold)
        flipped = tiny_dataset.item_popularity()[::-1].copy()
        service.reload(popularity=flipped)
        reference = PopularityRecommender(1, tiny_dataset.num_items)
        reference.fit(flipped)
        np.testing.assert_array_equal(
            service.scores([10_000])[0], reference.score_all_items(0)
        )

    def test_reload_replaces_item_mask(self, trained):
        _, service = trained
        mask = np.zeros(service.num_items, dtype=bool)
        mask[:5] = True
        service.reload(item_mask=mask)
        assert set(service.recommend(0, k=5, exclude_seen=False).tolist()) <= set(range(5))
        service.reload(item_mask=None)  # None is meaningful: unmask everything
        assert len(service.recommend(0, k=service.num_items, exclude_seen=False)) \
            == service.num_items

    def test_rejected_reload_leaves_service_untouched(self, trained):
        _, service = trained
        before = service.recommend(0, k=5)
        with pytest.raises(ValueError, match="item_mask"):
            service.reload(item_mask=np.ones(service.num_items + 1, dtype=bool))
        np.testing.assert_array_equal(service.recommend(0, k=5), before)

    def test_from_trainer_into_reloads_in_place(self, trained, tiny_dataset):
        adapter, service = trained
        retrained = create_trainer(served_spec(rounds=4), tiny_dataset).fit()
        reloaded = Recommender.from_trainer(retrained, tiny_dataset, into=service)
        assert reloaded is service
        fresh = Recommender.from_trainer(retrained, tiny_dataset)
        users = tiny_dataset.users[:10]
        np.testing.assert_array_equal(
            service.recommend(users, k=10), fresh.recommend(users, k=10)
        )


class TestCacheThreadSafety:
    def test_concurrent_queries_keep_cache_consistent(self, trained, tiny_dataset):
        """Hammer one facade from many threads; the OrderedDict LRU must
        neither corrupt nor miscount (regression: unguarded move_to_end /
        eviction under the threaded gateway)."""
        import threading

        adapter, _ = trained
        service = Recommender.from_trainer(adapter, tiny_dataset, cache_size=8)
        users = tiny_dataset.users
        errors = []

        def worker(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for _ in range(200):
                    user = int(users[rng.integers(len(users))])
                    row = service.scores([user])[0]
                    assert row.shape == (service.num_items,)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(service._cache) <= 8
        # Every lookup was tallied exactly once, under the lock.
        assert service.cache_hits + service.cache_misses == 8 * 200


class TestReloadRaceConsistency:
    """Regression for the worst finding of the `guarded-by` lint sweep.

    Before the snapshot refactor, ``scores()``/``recommend()`` read
    ``model``/``_popularity``/``_item_mask``/``_seen`` *outside* the
    service lock while ``reload()`` replaced them under it: a query racing
    a reload could return rows from the retired model cut by the new
    catalogue state, and a late ``_cache_put`` could poison the fresh
    cache with retired-model rows.  Every query now runs on one
    epoch-stamped snapshot; this test hammers exactly that interleaving.
    """

    def test_reload_under_load_never_tears_a_snapshot(self, tiny_dataset, rngs):
        import threading

        users = [int(user) for user in tiny_dataset.users]
        model_a = MatrixFactorization(
            tiny_dataset.num_users, tiny_dataset.num_items,
            embedding_dim=4, rng=rngs.spawn("race-model-a"),
        )
        model_b = MatrixFactorization(
            tiny_dataset.num_users, tiny_dataset.num_items,
            embedding_dim=4, rng=rngs.spawn("race-model-b"),
        )
        # Pin exactly-representable embeddings (multiples of 2^-3): every
        # partial product is exact, so scores are bit-identical regardless
        # of cohort size or BLAS blocking and each row's generation is
        # decidable by exact comparison.
        user_col = (np.arange(tiny_dataset.num_users, dtype=np.float64) + 1.0) * 0.125
        item_col = (np.arange(tiny_dataset.num_items, dtype=np.float64) + 1.0) * 0.125
        for sign, model in ((1.0, model_a), (-1.0, model_b)):
            model.user_embedding.weight.data[:] = sign * user_col[:, None]
            model.item_embedding.weight.data[:] = item_col[:, None]
        expected = {
            id(model): {
                user: row
                for user, row in zip(users, batch_scores(model, np.asarray(users)))
            }
            for model in (model_a, model_b)
        }
        assert not np.array_equal(  # the two generations must be tellable apart
            expected[id(model_a)][users[0]], expected[id(model_b)][users[0]]
        )
        seen = {user: tiny_dataset.train_items(user) for user in users}
        service = Recommender(model_a, seen_items=seen, cache_size=8)

        stop = threading.Event()
        errors = []
        lookups = [0] * 4

        def reader(slot: int) -> None:
            rng = np.random.default_rng(slot)
            try:
                while not stop.is_set():
                    cohort = [int(u) for u in rng.choice(users, size=4, replace=False)]
                    rows = service.scores(cohort)
                    lookups[slot] += len(cohort)
                    generations = set()
                    for user, row in zip(cohort, rows):
                        if np.array_equal(row, expected[id(model_a)][user]):
                            generations.add("a")
                        elif np.array_equal(row, expected[id(model_b)][user]):
                            generations.add("b")
                        else:
                            raise AssertionError(
                                f"user {user}: row matches neither model generation"
                            )
                    if len(generations) != 1:
                        raise AssertionError(
                            "one scores() call mixed rows from both generations"
                        )
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)
                stop.set()

        threads = [threading.Thread(target=reader, args=(slot,)) for slot in range(4)]
        for thread in threads:
            thread.start()
        # Hammer reloads while the readers run: 200 model flips, each
        # clearing the cache and bumping the epoch.
        for index in range(200):
            service.reload(model_b if index % 2 == 0 else model_a)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors[:1]
        # Telemetry stayed exact under the stampede: every warm lookup
        # tallied exactly one hit or miss (no cold users in the cohorts).
        assert service.cache_hits + service.cache_misses == sum(lookups)
        assert service.cold_hits == 0
        assert len(service._cache) <= 8

    def test_stale_put_cannot_poison_a_fresh_cache(self, tiny_dataset, rngs):
        """Deterministic replay of the ABA interleaving: a row computed
        against the pre-reload snapshot must be dropped, not cached."""
        users = [int(user) for user in tiny_dataset.users[:3]]
        model_a = MatrixFactorization(
            tiny_dataset.num_users, tiny_dataset.num_items,
            embedding_dim=4, rng=rngs.spawn("stale-a"),
        )
        model_b = MatrixFactorization(
            tiny_dataset.num_users, tiny_dataset.num_items,
            embedding_dim=4, rng=rngs.spawn("stale-b"),
        )
        service = Recommender(model_a, seen_items={u: [] for u in users})
        stale = service._snapshot()  # a reader captured the old generation...
        service.reload(model_b)  # ...then the swap landed
        row_a = service._scores_from(stale, [users[0]])[0]  # late completion
        np.testing.assert_array_equal(
            row_a, batch_scores(model_a, np.asarray(users[:1]))[0]
        )
        assert not service._cache, "stale-epoch row must not enter the new cache"
        row_b = service.scores([users[0]])[0]
        np.testing.assert_array_equal(
            row_b, batch_scores(model_b, np.asarray(users[:1]))[0]
        )


class TestFromCheckpoint:
    def test_checkpoint_and_in_memory_services_agree(self, tiny_dataset, tmp_path):
        spec = served_spec()
        callback = CheckpointEveryK(tmp_path / "ck", every=2, spec=spec)
        adapter = create_trainer(spec, tiny_dataset)
        adapter.fit(callbacks=[callback])

        from_memory = Recommender.from_trainer(adapter, tiny_dataset)
        from_artifact = Recommender.from_checkpoint(tmp_path / "ck" / "latest")
        users = tiny_dataset.users[:10]
        np.testing.assert_array_equal(
            from_memory.recommend(users, k=10), from_artifact.recommend(users, k=10)
        )

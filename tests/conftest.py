"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import debug_dataset
from repro.tensor import set_backend
from repro.utils import RngFactory

# REPRO_BACKEND=numpy32 runs the whole suite under the fast backend (the
# CI matrix does this): the session default changes, so every
# default-constructed spec/model/optimizer computes in float32.  All
# equality-based tests compare two runs under the *same* backend, so they
# hold under either; tests that pin a backend explicitly are unaffected.
_ENV_BACKEND = os.environ.get("REPRO_BACKEND")
if _ENV_BACKEND:
    set_backend(_ENV_BACKEND)


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh, seeded NumPy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def rngs() -> RngFactory:
    """A seeded RNG factory for components that need several streams."""
    return RngFactory(12345)


@pytest.fixture
def tiny_dataset(rngs):
    """A small implicit-feedback dataset (25 users, 50 items)."""
    return debug_dataset(rngs.spawn("tiny-data"), num_users=25, num_items=50,
                         num_interactions=500)


@pytest.fixture
def small_dataset(rngs):
    """A slightly larger dataset for integration-style tests."""
    return debug_dataset(rngs.spawn("small-data"), num_users=40, num_items=80,
                         num_interactions=900)

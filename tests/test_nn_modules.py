"""Tests for the nn layer library: registration, layers, state dicts."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.nn import Dropout, Embedding, Linear, Module, Parameter, Sequential
from repro.tensor import Tensor


class _TwoLayerNet(Module):
    def __init__(self, rng):
        super().__init__()
        self.first = Linear(4, 8, rng=rng)
        self.second = Linear(8, 1, rng=rng)
        self.scale = Parameter(np.array([2.0]))

    def forward(self, x):
        return self.second(self.first(x).relu()) * self.scale


class TestModule:
    def test_named_parameters_are_qualified(self, rng):
        net = _TwoLayerNet(rng)
        names = {name for name, _ in net.named_parameters()}
        assert "first.weight" in names
        assert "second.bias" in names
        assert "scale" in names

    def test_parameter_count(self, rng):
        net = _TwoLayerNet(rng)
        expected = 4 * 8 + 8 + 8 * 1 + 1 + 1
        assert net.num_parameters() == expected

    def test_zero_grad_resets_all(self, rng):
        net = _TwoLayerNet(rng)
        x = Tensor(np.ones((3, 4)))
        net(x).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_train_eval_propagates(self, rng):
        net = Sequential(Linear(4, 4, rng=rng), Dropout(0.5))
        net.eval()
        assert not net.training
        assert all(not module.training for module in net)
        net.train()
        assert all(module.training for module in net)

    def test_state_dict_roundtrip(self, rng):
        net = _TwoLayerNet(rng)
        other = _TwoLayerNet(np.random.default_rng(999))
        other.load_state_dict(net.state_dict())
        x = Tensor(np.random.default_rng(3).normal(size=(2, 4)))
        np.testing.assert_allclose(net(x).numpy(), other(x).numpy())

    def test_state_dict_is_a_copy(self, rng):
        net = _TwoLayerNet(rng)
        state = net.state_dict()
        state["scale"][0] = 123.0
        assert net.scale.data[0] != 123.0

    def test_load_state_dict_rejects_missing_keys(self, rng):
        net = _TwoLayerNet(rng)
        state = net.state_dict()
        state.pop("scale")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_rejects_shape_mismatch(self, rng):
        net = _TwoLayerNet(rng)
        state = net.state_dict()
        state["scale"] = np.zeros(3)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor([1.0]))


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3, rng=rng)
        assert layer(Tensor(np.ones((7, 5)))).shape == (7, 3)

    def test_no_bias_option(self, rng):
        layer = Linear(5, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert layer.num_parameters() == 15

    def test_linearity(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        x = np.random.default_rng(1).normal(size=(3, 4))
        doubled = layer(Tensor(2 * x)).numpy()
        np.testing.assert_allclose(doubled, 2 * layer(Tensor(x)).numpy(), atol=1e-10)

    def test_trains_toward_target(self, rng):
        from repro.optim import Adam
        from repro.tensor.functional import mse_loss

        layer = Linear(3, 1, rng=rng)
        optimizer = Adam(layer.parameters(), lr=0.05)
        inputs = np.random.default_rng(2).normal(size=(32, 3))
        targets = inputs @ np.array([[1.0], [-2.0], [0.5]]) + 0.3
        first_loss = None
        for _ in range(200):
            loss = mse_loss(layer(Tensor(inputs)), targets)
            if first_loss is None:
                first_loss = loss.item()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert loss.item() < 0.01 * first_loss


class TestEmbedding:
    def test_lookup_shape(self, rng):
        table = Embedding(10, 4, rng=rng)
        assert table(np.array([0, 3, 3])).shape == (3, 4)

    def test_update_counts_track_training_lookups(self, rng):
        table = Embedding(10, 4, rng=rng)
        table(np.array([1, 1, 2]))
        np.testing.assert_array_equal(table.update_counts[[1, 2, 3]], [2, 1, 0])

    def test_update_counts_not_tracked_in_eval(self, rng):
        table = Embedding(10, 4, rng=rng)
        table.eval()
        table(np.array([1, 1, 2]))
        assert table.update_counts.sum() == 0

    def test_gradient_reaches_only_looked_up_rows(self, rng):
        table = Embedding(6, 3, rng=rng)
        out = table(np.array([1, 4]))
        out.sum().backward()
        grad = table.weight.grad
        assert np.all(grad[[0, 2, 3, 5]] == 0.0)
        assert np.all(grad[[1, 4]] == 1.0)


class TestDropoutAndActivations:
    def test_dropout_eval_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(layer(x).numpy(), x.numpy())

    def test_dropout_training_zeroes_some_values(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 10)))).numpy()
        assert np.any(out == 0.0)
        # Inverted dropout keeps the expectation roughly constant.
        assert out.mean() == pytest.approx(1.0, abs=0.15)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_activation_modules(self):
        x = Tensor(np.array([-1.0, 2.0]))
        assert np.all(nn.ReLU()(x).numpy() == [0.0, 2.0])
        assert nn.Sigmoid()(x).numpy()[1] > 0.5
        assert nn.Tanh()(x).numpy()[0] < 0
        assert nn.LeakyReLU(0.1)(x).numpy()[0] == pytest.approx(-0.1)
        np.testing.assert_array_equal(nn.Identity()(x).numpy(), x.numpy())


class TestInitializers:
    def test_xavier_uniform_bounds(self, rng):
        values = nn.init.xavier_uniform((100, 50), rng)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(values) <= limit)

    def test_xavier_normal_std(self, rng):
        values = nn.init.xavier_normal((200, 100), rng)
        assert values.std() == pytest.approx(np.sqrt(2.0 / 300), rel=0.15)

    def test_kaiming_uniform_scale(self, rng):
        values = nn.init.kaiming_uniform((64, 32), rng)
        assert np.all(np.abs(values) <= np.sqrt(6.0 / 32))

    def test_normal_std(self, rng):
        values = nn.init.normal((1000,), rng, std=0.05)
        assert values.std() == pytest.approx(0.05, rel=0.2)

    def test_zeros(self):
        assert np.all(nn.init.zeros((3, 3)) == 0.0)

    def test_initializers_deterministic_per_seed(self):
        a = nn.init.xavier_uniform((5, 5), np.random.default_rng(1))
        b = nn.init.xavier_uniform((5, 5), np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

"""Deterministic concurrency suite for ``repro.serve.gateway``.

The gateway's contracts, each pinned here reproducibly:

* **Identity** — a tick's fanned-out results are bit-identical (``==``)
  to the direct batched ``Recommender`` call on the coalesced cohort, for
  every servable architecture (MF/MetaMF/NGCF/LightGCN closed forms and
  the NeuMF all-pairs fallback), and each request's ranked top-k equals
  its own direct per-user query.  The suite runs unchanged under both
  tensor backends (``REPRO_BACKEND=numpy32`` in CI).
* **Hot swap** — a request is answered entirely by the old model or
  entirely by the new one, never a torn mix, whether the swap lands
  between manual ticks or mid-flight under real threaded traffic.
* **SLO shedding** — with an injected fake clock, the shed/served pattern
  of a fixed-seed arrival replay is exactly reproducible, and overflow
  beyond the bounded queue is rejected immediately.

The deterministic tests drive the gateway in manual-tick mode (no
dispatcher thread): ``submit()`` + ``run_tick()`` make cohort composition
part of the test inputs instead of a scheduling accident.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

import repro
from repro.artifacts import CheckpointEveryK
from repro.experiments import ExperimentSpec, create_trainer
from repro.serve import GatewayStats, Recommender, Rejected, ServingGateway

TOP_K = 10

#: Same coverage matrix as tests/test_serve.py: every closed form plus
#: the flat all-pairs fallback.
SERVABLE = [
    ("ptf", {"server_model": "ngcf"}),
    ("ptf", {"server_model": "lightgcn"}),
    ("fcf", {}),
    ("metamf", {}),
    ("centralized", {"server_model": "neumf"}),
    ("centralized", {"server_model": "mf"}),
]


def served_spec(trainer: str = "fcf", **overrides) -> ExperimentSpec:
    base = dict(
        trainer=trainer,
        seed=29,
        embedding_dim=8,
        rounds=2,
        client_local_epochs=1,
        server_epochs=1,
        alpha=10,
    )
    base.update(overrides)
    trainer = base.pop("trainer")
    seed = base.pop("seed")
    return ExperimentSpec.from_flat(trainer=trainer, seed=seed, **base)


class FakeClock:
    """A manually advanced clock for deterministic deadline arithmetic."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def trained(tiny_dataset):
    adapter = create_trainer(served_spec(), tiny_dataset).fit()
    return adapter, tiny_dataset


def twin_services(adapter, dataset):
    """Two independently built, identical facades: one gated, one direct."""
    gated = Recommender.from_trainer(adapter, dataset)
    direct = Recommender.from_trainer(adapter, dataset)
    return gated, direct


# ----------------------------------------------------------------------
# Identity: gateway fan-out == the direct batched call, all models
# ----------------------------------------------------------------------
class TestBatchedIdentity:
    @pytest.mark.parametrize("trainer,overrides", SERVABLE)
    def test_replay_matches_direct_batched_calls(
        self, trainer, overrides, tiny_dataset
    ):
        """Fixed-seed replay: every tick's results ``==`` the direct
        ``Recommender`` call on that tick's coalesced cohort."""
        adapter = create_trainer(served_spec(trainer, **overrides), tiny_dataset).fit()
        gated, direct = twin_services(adapter, tiny_dataset)
        gateway = ServingGateway(gated, max_batch=16)
        rng = np.random.default_rng(97)
        users = np.asarray(tiny_dataset.users, dtype=np.int64)
        for wave in range(6):
            kind = "scores" if wave % 2 else "recommend"
            cohort = rng.choice(users, size=int(rng.integers(2, 9)), replace=True)
            tickets = [gateway.submit(int(u), k=TOP_K, kind=kind) for u in cohort]
            assert gateway.run_tick() == len(tickets)
            # Replay the identical cohort through the ungated facade —
            # micro-batching must be invisible down to the last bit.
            if kind == "scores":
                reference = direct.scores(cohort)
            else:
                reference = direct.recommend(cohort, k=TOP_K)
            for ticket, expected in zip(tickets, reference):
                np.testing.assert_array_equal(ticket.result(timeout=1), expected)

    @pytest.mark.parametrize("trainer,overrides", SERVABLE)
    def test_per_request_topk_matches_direct_per_user_query(
        self, trainer, overrides, tiny_dataset
    ):
        """Each request's ranked ids equal its own direct single-user query."""
        adapter = create_trainer(served_spec(trainer, **overrides), tiny_dataset).fit()
        gated, direct = twin_services(adapter, tiny_dataset)
        gateway = ServingGateway(gated, max_batch=8)
        cohort = tiny_dataset.users[:8]
        tickets = [gateway.submit(user, k=TOP_K) for user in cohort]
        gateway.run_tick()
        for ticket, user in zip(tickets, cohort):
            np.testing.assert_array_equal(
                ticket.result(timeout=1), direct.recommend(user, k=TOP_K)
            )

    def test_mixed_k_and_exclusion_groups_in_one_tick(self, trained):
        adapter, dataset = trained
        gated, direct = twin_services(adapter, dataset)
        gateway = ServingGateway(gated, max_batch=16)
        a = [gateway.submit(user, k=5) for user in dataset.users[:3]]
        b = [gateway.submit(user, k=7, exclude_seen=False) for user in dataset.users[3:6]]
        gateway.run_tick()
        ref_a = direct.recommend(np.asarray(dataset.users[:3]), k=5)
        ref_b = direct.recommend(
            np.asarray(dataset.users[3:6]), k=7, exclude_seen=False
        )
        for ticket, expected in zip(a, ref_a):
            np.testing.assert_array_equal(ticket.result(timeout=1), expected)
        for ticket, expected in zip(b, ref_b):
            np.testing.assert_array_equal(ticket.result(timeout=1), expected)

    def test_threaded_traffic_matches_direct_queries(self, trained):
        """Real dispatcher, many client threads: ranked answers still equal
        the direct per-user queries (cohort composition is scheduling-
        dependent, ranked ids must not be)."""
        adapter, dataset = trained
        gated, direct = twin_services(adapter, dataset)
        expected = {
            user: direct.recommend(user, k=TOP_K) for user in dataset.users
        }
        results: dict = {}
        errors: list = []

        def client(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for _ in range(25):
                    user = int(dataset.users[rng.integers(len(dataset.users))])
                    results[(seed, user)] = (user, gateway.recommend(user, k=TOP_K))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        with ServingGateway(gated, max_batch=16, max_wait_ms=1.0) as gateway:
            threads = [threading.Thread(target=client, args=(seed,)) for seed in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert results
        for user, ranked in results.values():
            np.testing.assert_array_equal(ranked, expected[user])


# ----------------------------------------------------------------------
# Hot swap: zero downtime, no torn reads
# ----------------------------------------------------------------------
@pytest.fixture
def two_checkpoints(tiny_dataset, tmp_path):
    """The same run checkpointed early (v1) and further-trained (v2)."""
    spec = served_spec(rounds=2)
    repro.run(spec, tiny_dataset,
              callbacks=[CheckpointEveryK(tmp_path / "v1", every=2)])
    repro.run(spec.replace(rounds=6), tiny_dataset,
              resume_from=tmp_path / "v1" / "latest",
              callbacks=[CheckpointEveryK(tmp_path / "v2", every=6)])
    return tmp_path / "v1" / "latest", tmp_path / "v2" / "latest"


class TestHotSwap:
    def test_swap_between_ticks_is_exact(self, tiny_dataset, two_checkpoints):
        path_v1, path_v2 = two_checkpoints
        direct_v1 = Recommender.from_checkpoint(path_v1)
        direct_v2 = Recommender.from_checkpoint(path_v2)
        gateway = ServingGateway.from_checkpoint(path_v1, max_batch=8)
        cohort = np.asarray(tiny_dataset.users[:6], dtype=np.int64)

        before = [gateway.submit(int(u), kind="scores") for u in cohort]
        gateway.run_tick()
        for ticket, expected in zip(before, direct_v1.scores(cohort)):
            np.testing.assert_array_equal(ticket.result(timeout=1), expected)

        # Requests already queued *before* the swap resolves are answered
        # by whichever snapshot their tick runs under — never a mix.
        queued = [gateway.submit(int(u), kind="scores") for u in cohort]
        gateway.swap(path_v2, block=True)
        gateway.run_tick()
        for ticket, expected in zip(queued, direct_v2.scores(cohort)):
            np.testing.assert_array_equal(ticket.result(timeout=1), expected)
        assert gateway.stats().swaps == 1

    def test_swap_mid_threaded_traffic_no_torn_reads(
        self, tiny_dataset, two_checkpoints
    ):
        path_v1, path_v2 = two_checkpoints
        direct_v1 = Recommender.from_checkpoint(path_v1)
        direct_v2 = Recommender.from_checkpoint(path_v2)
        users = list(tiny_dataset.users)
        old = {u: direct_v1.recommend(u, k=TOP_K) for u in users}
        new = {u: direct_v2.recommend(u, k=TOP_K) for u in users}
        # Precondition: the extra training rounds changed some answers,
        # otherwise a torn read would be undetectable.
        changed = [u for u in users if not np.array_equal(old[u], new[u])]
        assert changed, "further training did not change any top-k list"

        outcomes: list = []
        errors: list = []

        def client(seed: int) -> None:
            rng = np.random.default_rng(seed)
            try:
                for _ in range(40):
                    user = int(users[rng.integers(len(users))])
                    outcomes.append((user, gateway.recommend(user, k=TOP_K)))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        with ServingGateway.from_checkpoint(
            path_v1, max_batch=8, max_wait_ms=0.5
        ) as gateway:
            threads = [threading.Thread(target=client, args=(seed,)) for seed in range(4)]
            for thread in threads:
                thread.start()
            gateway.swap(path_v2, block=True)
            post_swap = {u: gateway.recommend(u, k=TOP_K) for u in users[:5]}
            for thread in threads:
                thread.join()
        assert not errors
        for user, ranked in outcomes:
            assert np.array_equal(ranked, old[user]) or np.array_equal(
                ranked, new[user]
            ), f"user {user}: result matches neither the old nor the new model"
        # After the flip, answers come from the new model only.
        for user, ranked in post_swap.items():
            np.testing.assert_array_equal(ranked, new[user])

    def test_swap_retires_cache_and_counts(self, tiny_dataset, two_checkpoints):
        path_v1, path_v2 = two_checkpoints
        gateway = ServingGateway.from_checkpoint(path_v1, max_batch=8)
        tickets = [gateway.submit(u) for u in tiny_dataset.users[:4]]
        gateway.run_tick()
        tickets += [gateway.submit(u) for u in tiny_dataset.users[:4]]
        gateway.run_tick()  # second tick: same users now hit the LRU
        assert all(t.done() for t in tickets)
        warm = gateway.stats()
        assert warm.cache_misses == 4 and warm.cache_hits == 4
        gateway.swap(path_v2, block=True)
        assert len(gateway.service._cache) == 0  # new service, cold cache
        gateway.submit(tiny_dataset.users[0])
        gateway.run_tick()
        after = gateway.stats()
        # Retired counters are preserved across the flip, new misses accrue.
        assert after.cache_hits == 4 and after.cache_misses == 5
        assert after.swaps == 1

    def test_swap_loader_error_propagates(self, trained, tmp_path):
        adapter, dataset = trained
        gateway = ServingGateway(Recommender.from_trainer(adapter, dataset))
        with pytest.raises(FileNotFoundError):
            gateway.swap(tmp_path / "does-not-exist", block=True)
        assert gateway.stats().swaps == 0


# ----------------------------------------------------------------------
# SLOs: deterministic shedding under a seeded clock, bounded queue
# ----------------------------------------------------------------------
def _replay_shed_pattern(service: Recommender, seed: int) -> list:
    """One fixed-seed overload replay; returns the per-request outcome."""
    clock = FakeClock()
    gateway = ServingGateway(
        service, max_batch=4, deadline_ms=20.0, max_queue=64, clock=clock
    )
    rng = np.random.default_rng(seed)
    outcomes = []
    tickets = []
    for step in range(30):
        clock.advance(float(rng.exponential(0.004)))
        tickets.append(gateway.submit(int(rng.integers(0, 20)), k=5))
        if step % 5 == 4:
            # An overloaded tick: scoring this batch "takes" 15 ms.
            clock.advance(0.015)
            gateway.run_tick()
    while gateway.queue_depth:
        clock.advance(0.015)
        gateway.run_tick()
    for ticket in tickets:
        result = ticket.result(timeout=1)
        outcomes.append(result.reason if isinstance(result, Rejected) else "served")
    return outcomes


class TestSLOShedding:
    def test_seeded_overload_replay_is_reproducible(self, trained):
        adapter, dataset = trained
        first = _replay_shed_pattern(Recommender.from_trainer(adapter, dataset), seed=5)
        second = _replay_shed_pattern(Recommender.from_trainer(adapter, dataset), seed=5)
        assert first == second
        assert "deadline" in first and "served" in first, (
            f"replay must exercise both outcomes, got {set(first)}"
        )

    def test_expired_requests_shed_before_scoring(self, trained):
        adapter, dataset = trained
        clock = FakeClock()
        gateway = ServingGateway(
            Recommender.from_trainer(adapter, dataset),
            max_batch=8, deadline_ms=10.0, clock=clock,
        )
        stale = gateway.submit(0, k=5)
        fresh_enough = gateway.submit(1, k=5, deadline_ms=100.0)  # per-request SLO
        clock.advance(0.05)
        gateway.run_tick()
        rejected = stale.result(timeout=1)
        assert isinstance(rejected, Rejected)
        assert (rejected.reason, rejected.status) == ("deadline", 503)
        assert not rejected  # sheds are falsy results
        assert isinstance(fresh_enough.result(timeout=1), np.ndarray)
        stats = gateway.stats()
        assert stats.shed_deadline == 1 and stats.completed == 1

    def test_bounded_queue_rejects_overflow_immediately(self, trained):
        adapter, dataset = trained
        gateway = ServingGateway(
            Recommender.from_trainer(adapter, dataset), max_batch=4, max_queue=4
        )
        accepted = [gateway.submit(user, k=5) for user in range(4)]
        overflow = [gateway.submit(user, k=5) for user in range(4, 7)]
        for ticket in overflow:  # resolved without waiting for any tick
            assert ticket.done()
            result = ticket.result()
            assert isinstance(result, Rejected) and result.reason == "queue_full"
        gateway.run_tick()
        assert all(isinstance(t.result(timeout=1), np.ndarray) for t in accepted)
        assert gateway.stats().shed_queue_full == 3

    def test_stop_sheds_queued_requests_as_shutdown(self, trained):
        adapter, dataset = trained
        gateway = ServingGateway(Recommender.from_trainer(adapter, dataset))
        pending = gateway.submit(0, k=5)
        gateway.stop()
        result = pending.result(timeout=1)
        assert isinstance(result, Rejected) and result.reason == "shutdown"


# ----------------------------------------------------------------------
# Telemetry and plumbing
# ----------------------------------------------------------------------
class TestGatewayStats:
    def test_snapshot_accounts_for_every_request(self, trained):
        adapter, dataset = trained
        gateway = ServingGateway(
            Recommender.from_trainer(adapter, dataset), max_batch=4
        )
        for user in range(10):
            gateway.submit(user % 5, k=5)
        while gateway.queue_depth:
            gateway.run_tick()
        stats = gateway.stats()
        assert isinstance(stats, GatewayStats)
        assert stats.completed == 10
        assert sum(size * n for size, n in stats.batch_histogram.items()) == 10
        assert max(stats.batch_histogram) <= 4
        assert stats.ticks == sum(stats.batch_histogram.values())
        assert stats.latency_p50_ms <= stats.latency_p99_ms <= stats.latency_max_ms
        assert stats.qps > 0

    def test_to_dict_is_json_ready(self, trained):
        adapter, dataset = trained
        gateway = ServingGateway(Recommender.from_trainer(adapter, dataset))
        gateway.submit(0, k=5)
        gateway.run_tick()
        payload = json.loads(json.dumps(gateway.stats().to_dict()))
        assert payload["completed"] == 1
        assert payload["shed"] == {"deadline": 0, "queue_full": 0, "shutdown": 0}
        assert set(payload["latency_ms"]) == {"p50", "p99", "max"}

    def test_reset_stats_opens_a_fresh_window(self, trained):
        adapter, dataset = trained
        gateway = ServingGateway(Recommender.from_trainer(adapter, dataset))
        gateway.submit(0, k=5)
        gateway.run_tick()
        gateway.reset_stats()
        stats = gateway.stats()
        assert stats.completed == 0 and stats.ticks == 0
        assert stats.cache_hits == 0 and stats.cache_misses == 0


class TestPlumbing:
    def test_blocking_helpers_require_a_dispatcher(self, trained):
        adapter, dataset = trained
        gateway = ServingGateway(Recommender.from_trainer(adapter, dataset))
        with pytest.raises(RuntimeError, match="not running"):
            gateway.recommend(0, k=5)

    def test_run_tick_refuses_while_dispatcher_runs(self, trained):
        adapter, dataset = trained
        with ServingGateway(Recommender.from_trainer(adapter, dataset)) as gateway:
            with pytest.raises(RuntimeError, match="dispatcher"):
                gateway.run_tick()

    def test_invalid_arguments_raise_in_the_callers_thread(self, trained):
        adapter, dataset = trained
        gateway = ServingGateway(Recommender.from_trainer(adapter, dataset))
        with pytest.raises(ValueError, match="k must be positive"):
            gateway.submit(0, k=0)
        with pytest.raises(ValueError, match="kind"):
            gateway.submit(0, kind="explain")
        with pytest.raises(ValueError, match="max_batch"):
            ServingGateway(Recommender.from_trainer(adapter, dataset), max_batch=0)

    def test_scoring_error_fails_only_that_group(self, trained):
        adapter, dataset = trained
        bare = Recommender(adapter.serving_model())  # no cold-start fallback
        gateway = ServingGateway(bare, max_batch=8)
        doomed = gateway.submit(10_000, kind="scores")
        survivor = gateway.submit(0, k=5)
        gateway.run_tick()
        with pytest.raises(IndexError, match="unknown"):
            doomed.result(timeout=1)
        assert isinstance(survivor.result(timeout=1), np.ndarray)
        stats = gateway.stats()
        assert stats.failed == 1 and stats.completed == 1
        # The gateway stays serviceable after a failed group.
        next_ok = gateway.submit(1, k=5)
        gateway.run_tick()
        assert isinstance(next_ok.result(timeout=1), np.ndarray)

    def test_ragged_truncated_lists_fan_out_correctly(self, trained):
        """Users with fewer than k unseen candidates get truncated lists
        through the gateway exactly as through the facade."""
        adapter, dataset = trained
        gated, direct = twin_services(adapter, dataset)
        gateway = ServingGateway(gated, max_batch=8)
        k = dataset.num_items  # forces truncation for every user with seen items
        cohort = dataset.users[:4]
        tickets = [gateway.submit(user, k=k) for user in cohort]
        gateway.run_tick()
        reference = direct.recommend(np.asarray(cohort), k=k)
        for ticket, expected in zip(tickets, reference):
            np.testing.assert_array_equal(ticket.result(timeout=1), expected)

"""Unit tests for the PTF-FedRec client and server components."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClientUpload, PTFClient, PTFConfig, PTFServer
from repro.utils import RngFactory

NUM_ITEMS = 40


def _config(**overrides):
    defaults = dict(
        rounds=2,
        client_local_epochs=1,
        server_epochs=1,
        embedding_dim=8,
        client_mlp_layers=(16, 8),
        server_num_layers=2,
        alpha=10,
        server_model="ngcf",
    )
    defaults.update(overrides)
    return PTFConfig(**defaults)


def _client(config=None, positives=(1, 2, 3, 4, 5), user_id=0, seed=0):
    config = config if config is not None else _config()
    return PTFClient(
        user_id=user_id,
        num_items=NUM_ITEMS,
        positive_items=np.array(positives),
        config=config,
        rngs=RngFactory(seed),
    )


class TestPTFConfig:
    def test_defaults_match_paper(self):
        config = PTFConfig()
        assert config.alpha == 30
        assert config.beta_range == (0.1, 1.0)
        assert config.gamma_range == (1.0, 4.0)
        assert config.swap_rate == 0.1
        assert config.mu == 0.5
        assert config.rounds == 20
        assert config.client_local_epochs == 5
        assert config.server_epochs == 2
        assert config.learning_rate == 0.001
        assert config.negative_ratio == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"defense": "quantum"},
            {"dispersal_mode": "telepathy"},
            {"rounds": 0},
            {"client_fraction": 0.0},
            {"alpha": -1},
            {"mu": 1.5},
            {"swap_rate": -0.1},
            {"beta_range": (0.0, 1.0)},
            {"gamma_range": (2.0, 1.0)},
            {"negative_ratio": 0},
            {"ldp_scale": -1.0},
        ],
    )
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PTFConfig(**kwargs)


class TestPTFClient:
    def test_local_training_reduces_loss(self):
        config = _config(client_local_epochs=3)
        client = _client(config)
        first = client.local_train(round_index=0)
        for round_index in range(1, 6):
            last = client.local_train(round_index)
        assert last < first

    def test_client_without_data_is_a_noop(self):
        client = _client(positives=())
        assert client.local_train(0) == 0.0

    def test_upload_items_are_unique_and_in_range(self):
        client = _client()
        client.local_train(0)
        upload = client.build_upload(0)
        assert upload.num_records > 0
        assert len(set(upload.items.tolist())) == upload.num_records
        assert np.all((upload.items >= 0) & (upload.items < NUM_ITEMS))
        assert np.all((upload.scores >= 0.0) & (upload.scores <= 1.0))

    def test_upload_ground_truth_is_the_full_positive_set(self):
        # The attack is graded against the client's full interaction set
        # (not just the uploaded positives), matching the paper's threat model.
        client = _client()
        upload = client.build_upload(0)
        assert set(upload.true_positive_items.tolist()) == {1, 2, 3, 4, 5}

    def test_defense_none_uploads_whole_trained_pool(self):
        config = _config(defense="none")
        client = _client(config)
        upload = client.build_upload(0)
        # All five positives must be present in the payload under "no defense".
        assert {1, 2, 3, 4, 5} <= set(upload.items.tolist())
        assert upload.num_records > 5

    def test_sampling_defense_usually_uploads_fewer_positives(self):
        full_sizes = []
        sampled_sizes = []
        for seed in range(8):
            full = _client(_config(defense="none"), seed=seed).build_upload(0)
            sampled = _client(_config(defense="sampling"), seed=seed).build_upload(0)
            positives = {1, 2, 3, 4, 5}
            full_sizes.append(len(positives & set(full.items.tolist())))
            sampled_sizes.append(len(positives & set(sampled.items.tolist())))
        assert np.mean(sampled_sizes) < np.mean(full_sizes)

    def test_upload_is_deterministic_per_seed(self):
        first = _client(seed=3).build_upload(1)
        second = _client(seed=3).build_upload(1)
        np.testing.assert_array_equal(first.items, second.items)
        np.testing.assert_allclose(first.scores, second.scores)

    def test_receive_dispersal_feeds_next_training_round(self):
        client = _client()
        client.receive_dispersal(np.array([20, 21]), np.array([0.8, 0.2]))
        np.testing.assert_array_equal(client.server_items, [20, 21])
        # Training with the extra soft labels must still work.
        loss = client.local_train(0)
        assert np.isfinite(loss)

    def test_receive_dispersal_validates_lengths(self):
        client = _client()
        with pytest.raises(ValueError):
            client.receive_dispersal(np.array([1, 2]), np.array([0.5]))


class TestPTFServer:
    def _uploads(self, num_clients=5, records_per_client=8, seed=0):
        rng = np.random.default_rng(seed)
        uploads = []
        for user in range(num_clients):
            items = rng.choice(NUM_ITEMS, size=records_per_client, replace=False)
            scores = rng.uniform(0, 1, size=records_per_client)
            positives = items[scores > 0.5]
            uploads.append(ClientUpload(user, items, scores, positives))
        return uploads

    def _server(self, **overrides):
        config = _config(**overrides)
        return PTFServer(num_users=5, num_items=NUM_ITEMS, config=config, rngs=RngFactory(1))

    def test_training_on_uploads_returns_finite_loss(self):
        server = self._server()
        loss = server.train_on_uploads(self._uploads(), round_index=0)
        assert np.isfinite(loss)
        assert len(server.loss_history) == 1

    def test_training_with_no_uploads_is_noop(self):
        server = self._server()
        assert server.train_on_uploads([], round_index=0) == 0.0

    def test_graph_server_builds_surrogate_graph(self):
        server = self._server(server_model="lightgcn")
        server.train_on_uploads(self._uploads(), round_index=0)
        assert server.model.adjacency.nnz > 0

    def test_neumf_server_does_not_need_graph(self):
        server = self._server(server_model="neumf")
        loss = server.train_on_uploads(self._uploads(), round_index=0)
        assert np.isfinite(loss)

    def test_dispersal_size_and_exclusion(self):
        server = self._server(alpha=12)
        uploads = self._uploads()
        server.train_on_uploads(uploads, round_index=0)
        dispersal = server.build_dispersal(uploads[0], round_index=0)
        assert 0 < dispersal.num_records <= 12
        assert not set(dispersal.items.tolist()) & set(uploads[0].items.tolist())
        assert np.all((dispersal.scores >= 0.0) & (dispersal.scores <= 1.0))

    def test_dispersal_alpha_zero_gives_empty_dataset(self):
        server = self._server(alpha=0)
        dispersal = server.build_dispersal(self._uploads()[0], round_index=0)
        assert dispersal.num_records == 0

    def test_dispersal_respects_mu_split(self):
        # With mu=1.0 every dispersed item comes from the confidence branch,
        # i.e. the most frequently updated items not uploaded by the client.
        server = self._server(alpha=6, mu=1.0)
        uploads = self._uploads()
        server.train_on_uploads(uploads, round_index=0)
        dispersal = server.build_dispersal(uploads[0], round_index=0)
        counts = server.model.item_update_counts()
        candidate_counts = counts.copy()
        candidate_counts[uploads[0].items] = -1
        top_candidates = set(np.argsort(-candidate_counts)[:6].tolist())
        overlap = len(set(dispersal.items.tolist()) & top_candidates)
        assert overlap >= dispersal.num_records - 2  # ties may shuffle the tail

    @pytest.mark.parametrize(
        "mode", ["confidence+hard", "confidence+random", "random+hard", "random"]
    )
    def test_all_dispersal_modes_produce_valid_datasets(self, mode):
        server = self._server(dispersal_mode=mode, alpha=8)
        uploads = self._uploads()
        server.train_on_uploads(uploads, round_index=0)
        dispersal = server.build_dispersal(uploads[1], round_index=0)
        assert dispersal.num_records > 0
        assert not set(dispersal.items.tolist()) & set(uploads[1].items.tolist())

    def test_predict_for_user_shape(self):
        server = self._server()
        scores = server.predict_for_user(2, np.arange(10))
        assert scores.shape == (10,)

"""Tests for the dataset container, splitting and synthetic generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    InteractionDataset,
    MINI_SPECS,
    PAPER_SPECS,
    SyntheticSpec,
    debug_dataset,
    generate_dataset,
    gowalla,
    movielens_100k,
    steam_200k,
)


class TestInteractionDataset:
    def test_basic_construction(self):
        dataset = InteractionDataset(3, 5, [(0, 1), (0, 2), (1, 0)], [(0, 3)], name="toy")
        assert dataset.num_train_interactions == 3
        assert dataset.num_test_interactions == 1
        np.testing.assert_array_equal(dataset.train_items(0), [1, 2])
        np.testing.assert_array_equal(dataset.test_items(0), [3])

    def test_duplicate_pairs_collapse(self):
        dataset = InteractionDataset(2, 4, [(0, 1), (0, 1), (0, 1)])
        assert dataset.num_train_interactions == 1

    def test_out_of_range_user_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset(2, 4, [(5, 1)])

    def test_out_of_range_item_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset(2, 4, [(0, 9)])

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            InteractionDataset(0, 4, [])

    def test_unknown_user_has_empty_items(self):
        dataset = InteractionDataset(3, 5, [(0, 1)])
        assert dataset.train_items(2).size == 0
        assert dataset.test_items(2).size == 0

    def test_train_matrix_matches_pairs(self):
        dataset = InteractionDataset(3, 4, [(0, 1), (2, 3)])
        matrix = dataset.train_matrix()
        assert matrix.shape == (3, 4)
        assert matrix[0, 1] == 1 and matrix[2, 3] == 1
        assert matrix.sum() == 2

    def test_item_popularity(self):
        dataset = InteractionDataset(3, 4, [(0, 1), (1, 1), (2, 0)])
        np.testing.assert_array_equal(dataset.item_popularity(), [1, 2, 0, 0])

    def test_stats(self):
        dataset = InteractionDataset(2, 10, [(0, 1), (0, 2), (1, 3)], [(1, 4)], name="s")
        stats = dataset.stats()
        assert stats.num_interactions == 4
        assert stats.average_profile_length == pytest.approx(2.0)
        assert stats.density == pytest.approx(4 / 20)
        assert stats.as_row()["dataset"] == "s"

    def test_subset_users(self):
        dataset = InteractionDataset(3, 5, [(0, 1), (1, 2), (2, 3)], [(1, 4)])
        subset = dataset.subset_users([1])
        assert subset.users == [1]
        assert subset.num_test_interactions == 1


class TestSplitting:
    def test_split_ratio_roughly_respected(self, rng):
        pairs = [(u, i) for u in range(20) for i in range(10)]
        dataset = InteractionDataset.from_pairs(20, 10, pairs, train_ratio=0.8, rng=rng)
        total = dataset.num_train_interactions + dataset.num_test_interactions
        assert total == 200
        ratio = dataset.num_train_interactions / total
        assert 0.75 <= ratio <= 0.85

    def test_every_user_keeps_a_training_item(self, rng):
        pairs = [(u, u % 5) for u in range(10)]
        dataset = InteractionDataset.from_pairs(10, 5, pairs, rng=rng)
        for user in range(10):
            assert dataset.train_items(user).size >= 1

    def test_train_and_test_are_disjoint_per_user(self, rng):
        pairs = [(u, i) for u in range(15) for i in range(12)]
        dataset = InteractionDataset.from_pairs(15, 12, pairs, rng=rng)
        for user in dataset.users:
            overlap = set(dataset.train_items(user)) & set(dataset.test_items(user))
            assert not overlap

    def test_invalid_ratio_rejected(self, rng):
        with pytest.raises(ValueError):
            InteractionDataset.from_pairs(2, 2, [(0, 0)], train_ratio=1.5, rng=rng)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=2, max_value=12))
    def test_split_never_loses_interactions(self, users, items):
        rng = np.random.default_rng(0)
        pairs = [(u, i) for u in range(users) for i in range(items) if (u + i) % 2 == 0]
        dataset = InteractionDataset.from_pairs(users, items, pairs, rng=rng)
        assert dataset.num_train_interactions + dataset.num_test_interactions == len(pairs)


class TestSyntheticGenerators:
    def test_debug_dataset_dimensions(self, rng):
        dataset = debug_dataset(rng, num_users=20, num_items=40, num_interactions=300)
        assert dataset.num_users == 20
        assert dataset.num_items == 40
        total = dataset.num_train_interactions + dataset.num_test_interactions
        assert 0.7 * 300 <= total <= 1.1 * 300

    def test_generator_is_deterministic_per_seed(self):
        first = debug_dataset(np.random.default_rng(5))
        second = debug_dataset(np.random.default_rng(5))
        np.testing.assert_array_equal(first.train_pairs, second.train_pairs)

    def test_paper_specs_match_table2(self):
        ml = PAPER_SPECS["movielens-100k"]
        assert (ml.num_users, ml.num_items, ml.num_interactions) == (943, 1682, 100_000)
        steam = PAPER_SPECS["steam-200k"]
        assert (steam.num_users, steam.num_items) == (3753, 5134)
        gw = PAPER_SPECS["gowalla"]
        assert gw.num_interactions == 391_238

    def test_scaled_spec_preserves_density(self):
        spec = PAPER_SPECS["movielens-100k"]
        scaled = spec.scaled(0.25)
        original_density = spec.num_interactions / (spec.num_users * spec.num_items)
        scaled_density = scaled.num_interactions / (scaled.num_users * scaled.num_items)
        assert scaled_density == pytest.approx(original_density, rel=0.35)

    def test_scaled_spec_rejects_non_positive(self):
        with pytest.raises(ValueError):
            PAPER_SPECS["gowalla"].scaled(0.0)

    def test_mini_specs_preserve_density_ordering(self):
        def density(spec):
            return spec.num_interactions / (spec.num_users * spec.num_items)

        assert density(MINI_SPECS["movielens-mini"]) > density(MINI_SPECS["steam-mini"])
        assert density(MINI_SPECS["steam-mini"]) > density(MINI_SPECS["gowalla-mini"])

    def test_small_scale_presets_have_expected_shapes(self, rng):
        dataset = movielens_100k(rng, scale=0.05)
        assert dataset.num_users == pytest.approx(943 * 0.05, abs=2)
        assert dataset.num_items == pytest.approx(1682 * 0.05, abs=2)

    def test_popularity_is_long_tailed(self, rng):
        dataset = generate_dataset(
            SyntheticSpec("skewed", 60, 120, 1500, popularity_exponent=1.2), rng=rng
        )
        counts = np.sort(dataset.item_popularity())[::-1]
        top_decile = counts[: len(counts) // 10].sum()
        assert top_decile > 0.2 * counts.sum()

    def test_steam_and_gowalla_presets_scale(self, rng):
        steam = steam_200k(rng, scale=0.03)
        gow = gowalla(rng, scale=0.02)
        assert steam.num_users > 0 and gow.num_users > 0
        assert steam.num_items < 5134 and gow.num_items < 10_068

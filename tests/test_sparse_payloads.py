"""Unit tests for rows-touched sparse payloads and shared-memory stores.

Covers the :class:`repro.tensor.sparse.SparseDelta` value-object contract
(encode/decode/merge round-trips over seeded random shapes and masks, the
degenerate empty-rows / all-rows cases, and validation), the byte
accounting of :func:`repro.federated.communication.sparse_parameter_bytes`,
and the :class:`repro.tensor.sharedmem.SharedEmbeddingStore` attach
round-trip the multiprocess sparse path relies on.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.artifacts.io import flatten_state, unflatten_state
from repro.federated.communication import (
    FLOAT_BYTES,
    INT_BYTES,
    dense_parameter_bytes,
    sparse_parameter_bytes,
)
from repro.tensor import active_backend
from repro.tensor.sharedmem import (
    SharedEmbeddingStore,
    shared_memory_available,
)
from repro.tensor.sparse import SparseDelta


def _random_case(rng: np.random.Generator):
    """One random (dense delta, touched rows) pair, any of several shapes."""
    num_rows = int(rng.integers(1, 40))
    tail = [(), (int(rng.integers(1, 9)),), (2, 3)][int(rng.integers(0, 3))]
    shape = (num_rows,) + tail
    dense = np.zeros(shape)
    touched = rng.choice(num_rows, size=int(rng.integers(0, num_rows + 1)), replace=False)
    for row in touched:
        block = rng.normal(size=tail) if tail else rng.normal()
        dense[row] = block
    return dense, touched


class TestSparseDeltaRoundTrips:
    """Property-style seeded sweeps: sparse encode/decode is lossless."""

    def test_from_dense_to_dense_round_trip(self, rng):
        for _ in range(50):
            dense, touched = _random_case(rng)
            delta = SparseDelta.from_dense(dense, rows=touched)
            assert np.array_equal(delta.to_dense(), dense)
            assert delta.num_rows == len(set(int(r) for r in touched))
            # Auto-detection finds exactly the nonzero rows — a subset of
            # the declared touched set (a touched row may stay zero).
            detected = SparseDelta.from_dense(dense)
            assert np.array_equal(detected.to_dense(), dense)
            assert set(detected.indices.tolist()) <= set(int(r) for r in touched)

    def test_between_matches_full_subtraction(self, rng):
        for _ in range(50):
            base, touched = _random_case(rng)
            updated = base.copy()
            for row in touched:
                updated[row] += rng.normal()
            delta = SparseDelta.between(updated, base, rows=touched)
            assert np.array_equal(delta.to_dense(), updated - base)
            # Restricted subtraction produces the same bits as slicing the
            # full-table difference at the touched rows.
            full = (updated - base)[np.unique(np.asarray(touched, dtype=np.int64))]
            assert np.array_equal(delta.values, full)

    def test_add_into_equals_dense_accumulation(self, rng):
        for _ in range(30):
            dense, touched = _random_case(rng)
            delta = SparseDelta.from_dense(dense, rows=touched)
            sparse_acc = rng.normal(size=dense.shape)
            dense_acc = sparse_acc.copy()
            delta.add_into(sparse_acc)
            dense_acc += dense
            assert np.array_equal(sparse_acc, dense_acc)

    def test_weighted_add_into_matches_dense(self, rng):
        for weight in (0.25, 1.0, 3.0):
            dense, touched = _random_case(rng)
            delta = SparseDelta.from_dense(dense, rows=touched)
            sparse_acc = np.zeros(dense.shape)
            delta.add_into(sparse_acc, weight=weight)
            reference = np.zeros(dense.shape)
            reference[delta.indices] += weight * dense[delta.indices]
            assert np.array_equal(sparse_acc, reference)

    def test_count_into_equals_dense_mask_accumulation(self, rng):
        for _ in range(30):
            dense, touched = _random_case(rng)
            delta = SparseDelta.from_dense(dense, rows=touched)
            sparse_acc = np.zeros(dense.shape)
            dense_acc = np.zeros(dense.shape)
            delta.count_into(sparse_acc)
            dense_acc += (dense != 0.0)
            assert np.array_equal(sparse_acc, dense_acc)

    def test_merge_is_union_sum(self, rng):
        for _ in range(30):
            shape = (20, 4)
            a = np.zeros(shape)
            b = np.zeros(shape)
            rows_a = rng.choice(20, size=int(rng.integers(0, 21)), replace=False)
            rows_b = rng.choice(20, size=int(rng.integers(0, 21)), replace=False)
            a[rows_a] = rng.normal(size=(len(rows_a), 4))
            b[rows_b] = rng.normal(size=(len(rows_b), 4))
            merged = SparseDelta.from_dense(a, rows=rows_a).merge(
                SparseDelta.from_dense(b, rows=rows_b)
            )
            assert np.array_equal(merged.to_dense(), a + b)
            assert set(merged.indices.tolist()) == (
                set(int(r) for r in rows_a) | set(int(r) for r in rows_b)
            )

    def test_unsorted_and_duplicated_rows_are_normalized(self):
        dense = np.arange(12, dtype=float).reshape(6, 2)
        delta = SparseDelta.from_dense(dense, rows=np.array([4, 1, 4, 1, 1]))
        assert delta.indices.tolist() == [1, 4]
        assert np.array_equal(delta.values, dense[[1, 4]])


class TestSparseDeltaEdgeCases:
    def test_empty_rows_payload(self):
        delta = SparseDelta.from_dense(np.zeros((7, 3)), rows=np.empty(0, dtype=np.int64))
        assert delta.num_rows == 0
        assert delta.num_values == 0
        assert delta.density == 0.0
        assert np.array_equal(delta.to_dense(), np.zeros((7, 3)))
        acc = np.ones((7, 3))
        delta.add_into(acc)
        assert np.array_equal(acc, np.ones((7, 3)))

    def test_all_rows_payload_via_dense_block(self):
        dense = np.arange(10, dtype=float).reshape(5, 2)
        delta = SparseDelta.dense_block(dense)
        assert delta.indices.tolist() == [0, 1, 2, 3, 4]
        assert delta.density == 1.0
        assert np.array_equal(delta.to_dense(), dense)

    def test_vector_parameters_have_row_width_one(self):
        delta = SparseDelta.dense_block(np.array([1.0, 0.0, 2.0]))
        assert delta.row_width == 1
        assert delta.num_values == 3

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SparseDelta((5, 2), np.array([1, 1]), np.zeros((2, 2)))

    def test_unsorted_indices_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            SparseDelta((5, 2), np.array([3, 1]), np.zeros((2, 2)))

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            SparseDelta((5, 2), np.array([5]), np.zeros((1, 2)))
        with pytest.raises(ValueError, match="out of range"):
            SparseDelta((5, 2), np.array([-1]), np.zeros((1, 2)))

    def test_value_block_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="values shape"):
            SparseDelta((5, 2), np.array([0, 1]), np.zeros((2, 3)))

    def test_mismatched_accumulator_rejected(self):
        delta = SparseDelta.dense_block(np.zeros((4, 2)))
        with pytest.raises(ValueError, match="accumulator shape"):
            delta.add_into(np.zeros((5, 2)))
        with pytest.raises(ValueError, match="accumulator shape"):
            delta.count_into(np.zeros((5, 2)))

    def test_merge_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cannot merge"):
            SparseDelta.dense_block(np.zeros((4, 2))).merge(
                SparseDelta.dense_block(np.zeros((5, 2)))
            )

    def test_between_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            SparseDelta.between(np.zeros((4, 2)), np.zeros((5, 2)))

    def test_equality_is_by_content(self):
        a = SparseDelta.from_dense(np.eye(3))
        b = SparseDelta.from_dense(np.eye(3))
        c = SparseDelta.from_dense(2 * np.eye(3))
        assert a == b
        assert a != c
        assert a != "not a delta"

    def test_preserves_backend_dtype(self):
        dtype = active_backend().dtype
        dense = np.zeros((6, 2), dtype=dtype)
        dense[2] = 1.5
        delta = SparseDelta.from_dense(dense)
        assert delta.values.dtype == dtype
        assert delta.to_dense().dtype == dtype


class TestSparseDeltaSerialization:
    def test_state_dict_round_trip(self, rng):
        dense, touched = _random_case(rng)
        delta = SparseDelta.from_dense(dense, rows=touched)
        restored = SparseDelta.from_state_dict(delta.state_dict())
        assert restored == delta

    def test_state_dict_flattens_through_artifacts(self, rng):
        dense, touched = _random_case(rng)
        delta = SparseDelta.from_dense(dense, rows=touched)
        tree = {"buffer": {"item_embedding.weight": delta.state_dict()}}
        skeleton, arrays = flatten_state(tree)
        rebuilt = unflatten_state(skeleton, arrays)
        restored = SparseDelta.from_state_dict(
            rebuilt["buffer"]["item_embedding.weight"]
        )
        assert restored == delta

    def test_is_state_dict_discriminates(self):
        delta = SparseDelta.dense_block(np.zeros((2, 2)))
        assert SparseDelta.is_state_dict(delta.state_dict())
        assert not SparseDelta.is_state_dict({"kind": "other"})
        assert not SparseDelta.is_state_dict(np.zeros((2, 2)))
        with pytest.raises(ValueError, match="not a SparseDelta"):
            SparseDelta.from_state_dict({"kind": "other"})


class TestSparseParameterBytes:
    def test_formula(self):
        # 40 touched rows of a dim-32 table: one 4-byte index plus 32
        # 4-byte floats per row.
        assert sparse_parameter_bytes(40, 32) == 40 * (INT_BYTES + 32 * FLOAT_BYTES)

    def test_zero_rows_cost_nothing(self):
        assert sparse_parameter_bytes(0, 32) == 0

    def test_ciphertext_values(self):
        # FedMF: values are ciphertexts, indices stay plaintext.
        assert sparse_parameter_bytes(10, 8, value_bytes=64) == 10 * (INT_BYTES + 8 * 64)

    def test_full_table_costs_more_than_dense_by_index_overhead(self):
        num_rows, dim = 100, 16
        sparse = sparse_parameter_bytes(num_rows, dim)
        dense = dense_parameter_bytes(num_rows * dim)
        assert sparse == dense + num_rows * INT_BYTES

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            sparse_parameter_bytes(-1, 4)
        with pytest.raises(ValueError):
            sparse_parameter_bytes(4, -1)


@pytest.mark.skipif(not shared_memory_available(), reason="no shared memory")
class TestSharedEmbeddingStore:
    def test_handles_round_trip_through_pickle(self, rng):
        arrays = {
            "item_embedding.weight": rng.normal(size=(50, 8)),
            "bias": rng.normal(size=(50,)),
        }
        try:
            store = SharedEmbeddingStore(arrays)
        except OSError:
            pytest.skip("shared memory unavailable in this sandbox")
        with store:
            assert store.total_bytes >= sum(a.nbytes for a in arrays.values())
            for name, original in arrays.items():
                # A worker receives the handle pickled; attaching must
                # reproduce the exact table, read-only.
                handle = pickle.loads(pickle.dumps(store.handles[name]))
                view = handle.open()
                assert np.array_equal(view, original)
                assert not view.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    view[...] = 0.0
                handle.close()

    def test_close_is_idempotent(self, rng):
        try:
            store = SharedEmbeddingStore({"t": rng.normal(size=(4, 4))})
        except OSError:
            pytest.skip("shared memory unavailable in this sandbox")
        store.close()
        store.close()
        assert store.handles == {}

    def test_backend_seam_returns_store_or_none(self, rng):
        backend = active_backend()
        store = backend.create_shared_store({"t": rng.normal(size=(4, 4))})
        if store is None:
            pytest.skip("shared memory unavailable in this sandbox")
        with store:
            view = store.handles["t"].open()
            assert view.dtype == backend.dtype
            store.handles["t"].close()

"""Tests for repro.scenario: fault injection, telemetry and bit-identity."""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro
from repro.experiments.registry import available_trainers, get_trainer
from repro.experiments.result import RoundRecord, RunResult
from repro.experiments.spec import ExperimentSpec
from repro.scenario import (
    PARTICIPATION_KEYS,
    ParticipationSummary,
    RoundParticipation,
    ScenarioEngine,
    ScenarioSpec,
)
from repro.utils.rng import RngFactory

SCHEDULERS = ("serial", "batched", "multiprocess")

CHURN = {"dropout": 0.3}
STRAGGLER_SYNC = {"deadline": 1.0, "latency_range": (0.5, 1.5)}
STRAGGLER_ASYNC = {
    "deadline": 1.0,
    "latency_range": (0.5, 2.5),
    "aggregation": "async",
    "max_staleness": 2,
}
ARRIVALS = {
    "user_arrival_fraction": 0.3,
    "user_arrival_rounds": 2,
    "item_arrival_fraction": 0.2,
    "item_arrival_rounds": 2,
}
EVERYTHING = {**CHURN, **STRAGGLER_ASYNC, **ARRIVALS}

FAULT_SPECS = {
    "churn": CHURN,
    "straggler-sync": STRAGGLER_SYNC,
    "straggler-async": STRAGGLER_ASYNC,
    "arrivals": ARRIVALS,
    "everything": EVERYTHING,
}


def _spec(trainer, scenario=None, scheduler="serial", rounds=2, **overrides):
    return ExperimentSpec(
        trainer=trainer,
        protocol={"rounds": rounds, "client_local_epochs": 1, "server_epochs": 1},
        evaluation={"max_users": 6},
        engine={"scheduler": scheduler, "workers": 2},
        scenario=scenario or {},
        **overrides,
    )


def _run_fingerprint(result: RunResult):
    return (
        [record.to_dict() for record in result.history],
        result.final,
        result.communication,
        result.participation,
    )


def _serving_parameters(spec, dataset):
    adapter = get_trainer(spec.trainer)(spec, dataset)
    adapter.fit()
    return {
        name: parameter.data.copy()
        for name, parameter in adapter.serving_model().named_parameters()
    }


# ----------------------------------------------------------------------
# ScenarioSpec / ScenarioEngine units
# ----------------------------------------------------------------------
class TestScenarioSpec:
    def test_default_is_disabled(self):
        assert not ScenarioSpec().enabled

    @pytest.mark.parametrize("fault", sorted(FAULT_SPECS))
    def test_fault_specs_are_enabled(self, fault):
        assert ScenarioSpec(**FAULT_SPECS[fault]).enabled

    def test_staleness_weight(self):
        spec = ScenarioSpec(staleness_alpha=0.5)
        assert spec.staleness_weight(0) == 1.0
        assert spec.staleness_weight(1) == pytest.approx(0.25)
        assert spec.staleness_weight(3) == pytest.approx(0.125)

    @pytest.mark.parametrize("bad", [
        {"dropout": 1.5},
        {"latency_range": (2.0, 1.0)},
        {"deadline": -1.0},
        {"aggregation": "eventual"},
        {"staleness_alpha": 0.0},
        {"max_staleness": -1},
        {"user_arrival_fraction": 1.0},
        {"item_arrival_rounds": 0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            ScenarioSpec(**bad)

    def test_spec_section_roundtrip(self):
        spec = ExperimentSpec(trainer="ptf", scenario=EVERYTHING)
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert spec.scenario.asynchronous


class TestScenarioEngine:
    def _engine(self, scenario, seed=0):
        return ScenarioEngine(
            ScenarioSpec(**scenario), RngFactory(seed), users=range(40), num_items=60
        )

    def test_plan_partitions_cohort(self):
        engine = self._engine(EVERYTHING)
        for round_index in range(5):
            plan = engine.plan_round(list(range(40)), round_index)
            partition = (
                sorted(plan.on_time) + sorted(plan.dropped)
                + sorted(plan.lost) + sorted(plan.stale)
            )
            assert sorted(partition) == sorted(plan.selected)
            assert sorted(plan.selected + plan.pending) == list(range(40))
            assert set(plan.trained) == set(plan.selected) - set(plan.dropped)

    @pytest.mark.parametrize("fault", sorted(FAULT_SPECS))
    def test_events_deterministic(self, fault):
        plans_a = [self._engine(FAULT_SPECS[fault]).plan_round(range(40), r)
                   for r in range(4)]
        plans_b = [self._engine(FAULT_SPECS[fault]).plan_round(range(40), r)
                   for r in range(4)]
        assert plans_a == plans_b

    def test_events_depend_on_seed(self):
        a = self._engine(EVERYTHING, seed=0).plan_round(range(40), 0)
        b = self._engine(EVERYTHING, seed=1).plan_round(range(40), 0)
        assert a != b

    def test_events_independent_of_cohort_order(self):
        engine = self._engine(CHURN)
        forward = engine.plan_round(list(range(40)), 2)
        backward = engine.plan_round(list(reversed(range(40))), 2)
        assert set(forward.dropped) == set(backward.dropped)

    def test_sync_mode_never_buffers(self):
        engine = self._engine(STRAGGLER_SYNC)
        for round_index in range(5):
            plan = engine.plan_round(range(40), round_index)
            assert plan.stale == {}

    def test_async_staleness_bounded(self):
        engine = self._engine(STRAGGLER_ASYNC)
        staleness = [s for r in range(5)
                     for s in engine.plan_round(range(40), r).stale.values()]
        assert staleness, "expected some buffered stragglers"
        assert all(1 <= s <= 2 for s in staleness)

    def test_arrivals_monotonic(self):
        engine = self._engine(ARRIVALS)
        sizes = [len(engine.arrived_user_set(r)) for r in range(-1, 4)]
        assert sizes == sorted(sizes)
        assert sizes[0] < 40 and sizes[-1] == 40
        masks = [engine.arrived_item_mask(r) for r in range(-1, 4)]
        counts = [int(mask.sum()) for mask in masks]
        assert counts == sorted(counts)
        assert counts[0] < 60 and counts[-1] == 60

    def test_item_mask_none_when_disabled(self):
        assert self._engine(CHURN).arrived_item_mask(0) is None


# ----------------------------------------------------------------------
# Satellite: RoundRecord reserved-key regression
# ----------------------------------------------------------------------
class TestRoundRecordReservedKey:
    def test_round_metric_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            RoundRecord(3, {"round": 1.0})

    def test_roundtrip_still_lossless(self):
        record = RoundRecord(7, {"loss": 0.25, "hit": 0.5})
        assert RoundRecord.from_dict(record.to_dict()) == record


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
class TestParticipationTelemetry:
    def test_round_participation_log_roundtrip(self):
        participation = RoundParticipation(
            selected=10, completed=6, dropped=2, straggled=3, stale_applied=1
        )
        assert RoundParticipation.from_logs(participation.as_logs()) == participation

    def test_summary_from_history_skips_plain_rounds(self):
        records = [
            RoundRecord(0, {"client_loss": 0.5}),
            RoundRecord(1, {"client_loss": 0.4, "selected": 10, "completed": 8,
                            "dropped": 2, "straggled": 0, "stale_applied": 0}),
            RoundRecord(2, {"client_loss": 0.3, "selected": 10, "completed": 7,
                            "dropped": 1, "straggled": 2, "stale_applied": 1}),
        ]
        summary = ParticipationSummary.from_history(records)
        assert summary.rounds == 2
        assert summary.selected == 20
        assert summary.completed == 15
        assert summary.completion_rate == pytest.approx(0.75)
        assert ParticipationSummary.from_dict(summary.to_dict()) == summary


# ----------------------------------------------------------------------
# Tentpole acceptance: scenario-off bit-identity sweep
# ----------------------------------------------------------------------
class TestScenarioOffBitIdentity:
    @pytest.mark.parametrize("trainer", sorted(available_trainers()))
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_default_scenario_matches_reference(self, tiny_dataset, trainer, scheduler):
        """Default ScenarioSpec == reference behavior, for every trainer/scheduler.

        The serial run carries no scenario knobs at all; the compared run
        carries an explicit (default) scenario section under each
        scheduler.  History, final metrics and served parameters must all
        compare equal — the scenario-off path is the unchanged reference
        code, not a near-copy.
        """
        reference_spec = _spec(trainer, scheduler="serial")
        spec = _spec(trainer, scenario={}, scheduler=scheduler)
        reference = repro.run(reference_spec, tiny_dataset)
        result = repro.run(spec, tiny_dataset)
        assert [r.to_dict() for r in result.history] == [
            r.to_dict() for r in reference.history
        ]
        assert result.final == reference.final
        assert result.communication == reference.communication
        assert result.participation is None
        for record in result.history:
            assert not any(key in record.metrics for key in PARTICIPATION_KEYS)
        ours = _serving_parameters(spec, tiny_dataset)
        theirs = _serving_parameters(reference_spec, tiny_dataset)
        assert set(ours) == set(theirs)
        for name in ours:
            np.testing.assert_array_equal(ours[name], theirs[name])


# ----------------------------------------------------------------------
# Tentpole acceptance: fault determinism and scheduler invariance
# ----------------------------------------------------------------------
class TestFaultDeterminism:
    @pytest.mark.parametrize("fault", sorted(FAULT_SPECS))
    @pytest.mark.parametrize("trainer", ["ptf", "fedmf"])
    def test_fixed_seed_reproduces_event_stream(self, tiny_dataset, trainer, fault):
        spec = _spec(trainer, scenario=FAULT_SPECS[fault], rounds=3)
        first = repro.run(spec, tiny_dataset)
        second = repro.run(spec, tiny_dataset)
        assert _run_fingerprint(first) == _run_fingerprint(second)
        assert first.participation is not None
        assert first.participation.rounds == 3
        assert first.participation.selected > 0

    @pytest.mark.parametrize("trainer", ["ptf", "fcf"])
    def test_schedulers_agree_under_faults(self, tiny_dataset, trainer):
        results = {
            scheduler: repro.run(
                _spec(trainer, scenario=EVERYTHING, scheduler=scheduler, rounds=3),
                tiny_dataset,
            )
            for scheduler in SCHEDULERS
        }
        for scheduler in ("batched", "multiprocess"):
            assert _run_fingerprint(results[scheduler]) == _run_fingerprint(
                results["serial"]
            ), scheduler

    def test_history_carries_participation_keys(self, tiny_dataset):
        result = repro.run(_spec("ptf", scenario=CHURN, rounds=3), tiny_dataset)
        for record in result.history:
            assert all(key in record.metrics for key in PARTICIPATION_KEYS)
        totals = ParticipationSummary.from_history(result.history)
        assert totals == result.participation

    def test_async_applies_stale_payloads(self, tiny_dataset):
        result = repro.run(
            _spec("ptf", scenario=STRAGGLER_ASYNC, rounds=4), tiny_dataset
        )
        assert result.participation.straggled > 0
        assert result.participation.stale_applied > 0

    def test_sync_discards_stale_payloads(self, tiny_dataset):
        result = repro.run(
            _spec("fedmf", scenario=STRAGGLER_SYNC, rounds=3), tiny_dataset
        )
        assert result.participation.straggled > 0
        assert result.participation.stale_applied == 0

    def test_faults_change_results(self, tiny_dataset):
        clean = repro.run(_spec("ptf", rounds=3), tiny_dataset)
        faulty = repro.run(_spec("ptf", scenario=EVERYTHING, rounds=3), tiny_dataset)
        assert [r.to_dict() for r in clean.history] != [
            r.to_dict() for r in faulty.history
        ]


# ----------------------------------------------------------------------
# Tentpole acceptance: resume replays the same event stream
# ----------------------------------------------------------------------
class TestScenarioResume:
    @pytest.mark.parametrize("trainer", ["ptf", "fedmf"])
    @pytest.mark.parametrize("fault", ["churn", "straggler-async", "everything"])
    def test_resume_bit_identical(self, tmp_path, tiny_dataset, trainer, fault):
        scenario = FAULT_SPECS[fault]
        from repro.artifacts import CheckpointEveryK

        spec = _spec(trainer, scenario=scenario, rounds=4)
        full = repro.run(spec, tiny_dataset)

        callback = CheckpointEveryK(tmp_path / "ckpt", every=2)
        repro.run(spec.replace(rounds=2), tiny_dataset, callbacks=[callback])
        checkpoints = sorted((tmp_path / "ckpt").iterdir())
        resumed = repro.run(spec, tiny_dataset, resume_from=checkpoints[-1])

        assert _run_fingerprint(resumed) == _run_fingerprint(full)

    def test_resume_rejects_changed_scenario(self, tmp_path, tiny_dataset):
        from repro.artifacts import CheckpointEveryK

        spec = _spec("ptf", scenario=CHURN, rounds=2)
        callback = CheckpointEveryK(tmp_path / "ckpt", every=2)
        repro.run(spec, tiny_dataset, callbacks=[callback])
        checkpoint = sorted((tmp_path / "ckpt").iterdir())[-1]
        changed = _spec("ptf", scenario={"dropout": 0.6}, rounds=4)
        with pytest.raises(ValueError, match="resume spec does not match"):
            repro.run(changed, tiny_dataset, resume_from=checkpoint)


# ----------------------------------------------------------------------
# Satellite: multiprocess worker failure recovery
# ----------------------------------------------------------------------
class TestWorkerFailureRecovery:
    def _worker_only_failure(self, monkeypatch, cls, method, user_attr, victims):
        """Patch ``cls.method`` to raise inside pool workers for ``victims``."""
        parent = os.getpid()
        original = getattr(cls, method)

        def flaky(self, *args, **kwargs):
            if int(getattr(self, user_attr)) in victims and os.getpid() != parent:
                raise RuntimeError("injected worker failure")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(cls, method, flaky)

    def test_ptf_worker_failure_recovered_by_driver_retry(
        self, monkeypatch, tiny_dataset
    ):
        from repro.core.client import PTFClient

        spec = _spec("ptf", scheduler="multiprocess", rounds=2)
        reference = repro.run(_spec("ptf", scheduler="serial", rounds=2), tiny_dataset)
        self._worker_only_failure(
            monkeypatch, PTFClient, "local_train", "user_id", {3, 7}
        )
        result = repro.run(spec, tiny_dataset)
        # The retry reruns the exact keyed computation on the driver, so a
        # recovered round is still bit-identical to the serial reference.
        assert _run_fingerprint(result) == _run_fingerprint(reference)

    def test_ptf_permanent_failure_reported_as_dropped(
        self, monkeypatch, tiny_dataset
    ):
        from repro.core.client import PTFClient

        original = PTFClient.local_train

        def always_failing(self, round_index):
            if int(self.user_id) in {3, 7}:
                raise RuntimeError("injected permanent failure")
            return original(self, round_index)

        monkeypatch.setattr(PTFClient, "local_train", always_failing)
        result = repro.run(_spec("ptf", scheduler="multiprocess", rounds=2), tiny_dataset)
        assert result.rounds_completed == 2
        for record in result.history:
            assert record.metrics["dropped"] == 2
            assert record.metrics["completed"] == record.metrics["selected"] - 2

    def test_fedavg_permanent_failure_reported_as_dropped(
        self, monkeypatch, tiny_dataset
    ):
        import repro.federated.base as federated_base

        original = federated_base.run_local_plan

        def always_failing(model, config, user, plan):
            if int(user) in {2, 5}:
                raise RuntimeError("injected permanent failure")
            return original(model, config, user, plan)

        monkeypatch.setattr(federated_base, "run_local_plan", always_failing)
        result = repro.run(
            _spec("fedmf", scheduler="multiprocess", rounds=2), tiny_dataset
        )
        assert result.rounds_completed == 2
        for record in result.history:
            assert record.metrics["dropped"] == 2


# ----------------------------------------------------------------------
# Serving under streaming arrivals
# ----------------------------------------------------------------------
class TestServeArrivals:
    def test_unarrived_users_fall_back_and_items_are_hidden(self, tiny_dataset):
        from repro.serve import Recommender

        spec = _spec("ptf", scenario=ARRIVALS, rounds=2)
        adapter = get_trainer("ptf")(spec, tiny_dataset)
        adapter.fit()
        engine = adapter.scenario_engine()
        horizon = adapter.rounds_completed() - 1
        arrived = engine.arrived_user_set(horizon)
        cold_users = [user for user in tiny_dataset.users if user not in arrived]
        assert cold_users, "fixture should hold back some users"

        service = Recommender.from_trainer(adapter, tiny_dataset)
        recommendations = service.recommend(list(tiny_dataset.users), k=10)
        assert service.cold_hits == len(cold_users)

        hidden = set(np.flatnonzero(~engine.arrived_item_mask(horizon)).tolist())
        assert hidden, "fixture should hold back some items"
        rows = (recommendations if isinstance(recommendations, list)
                else list(recommendations))
        for row in rows:
            assert not set(np.atleast_1d(row).tolist()) & hidden

    def test_scenario_free_serving_unchanged(self, tiny_dataset):
        from repro.serve import Recommender

        spec = _spec("ptf", rounds=2)
        adapter = get_trainer("ptf")(spec, tiny_dataset)
        adapter.fit()
        service = Recommender.from_trainer(adapter, tiny_dataset)
        assert service._item_mask is None
        assert adapter.scenario_engine() is not None
        assert not adapter.scenario_engine().enabled

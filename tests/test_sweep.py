"""repro.sweep — specs, fingerprints, the artifact store and the orchestrator.

The contracts under test:

* fingerprints are stable across processes, insensitive to execution-only
  knobs (``engine`` section, evaluation batch size) and sensitive to every
  arithmetic knob (spec fields, seed, backend, dataset),
* the artifact store completes atomically and never serves a torn result,
* the orchestrator executes each fingerprint at most once (cache hits and
  in-sweep dedup), parallel results ``==`` serial results ``==`` direct
  ``repro.run``, stages run in DAG order, and a killed sweep resumes by
  executing exactly the missing runs.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.sweep import (
    ALL_RUNS,
    ArtifactStore,
    DatasetSpec,
    RunSpec,
    StageContext,
    StageSpec,
    Sweep,
    SweepError,
    SweepReport,
    SweepSpec,
    expand_grid,
    run_sweep,
    stage_order,
)

#: Tiny but real experiment: 2 rounds of PTF on the debug dataset.
BASE = {"trainer": "ptf", "protocol": {"rounds": 2},
        "evaluation": {"audit_privacy": False}}
DATASET = {"source": "debug", "seed": 5}

#: A registered trainer whose construction always fails, for exercising the
#: orchestrator's failure path (inline workers keep it in-process).
_EXPLODING_TRAINER = "test-sweep-exploding"


class _ExplodingTrainer:
    def __init__(self, spec, dataset):
        raise RuntimeError("deliberate test failure")


@pytest.fixture
def exploding_trainer():
    """Register the always-failing trainer for one test, then remove it so
    the global registry stays clean (registry-coverage tests enumerate it)."""
    from repro.experiments.registry import _TRAINER_REGISTRY

    repro.register_trainer(_EXPLODING_TRAINER, replace=True)(_ExplodingTrainer)
    try:
        yield _EXPLODING_TRAINER
    finally:
        _TRAINER_REGISTRY.pop(_EXPLODING_TRAINER, None)


def tiny_sweep(name="tiny", grid=None, stages=()):
    return SweepSpec.from_grid(
        name, base=BASE, grid=grid or {"alpha": [10, 30]},
        dataset=DATASET, stages=stages,
    )


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
class TestSweepSpec:
    def test_grid_expansion_ids_and_values(self):
        runs = expand_grid(
            repro.ExperimentSpec.from_dict(BASE),
            {"alpha": [10, 30], "seed": [0, 1]},
        )
        assert [run.id for run in runs] == [
            "alpha=10,seed=0", "alpha=10,seed=1",
            "alpha=30,seed=0", "alpha=30,seed=1",
        ]
        assert runs[2].experiment.dispersal.alpha == 30
        assert runs[2].experiment.seed == 0

    def test_grid_dataset_axis(self):
        datasets = {"a": DatasetSpec(seed=1), "b": DatasetSpec(seed=2)}
        runs = expand_grid(
            repro.ExperimentSpec.from_dict(BASE),
            {"dataset": ["a", "b"]}, datasets=datasets,
        )
        assert [run.dataset.seed for run in runs] == [1, 2]

    def test_grid_unknown_dataset_alias_rejected(self):
        with pytest.raises(ValueError, match="not declared"):
            expand_grid(repro.ExperimentSpec.from_dict(BASE), {"dataset": ["nope"]})

    def test_json_round_trip(self):
        sweep = tiny_sweep(stages=[StageSpec(name="m", aggregator="final-metrics")])
        restored = SweepSpec.from_json(sweep.to_json())
        assert [run.id for run in restored.runs] == [run.id for run in sweep.runs]
        assert restored.runs[0].experiment == sweep.runs[0].experiment
        assert restored.runs[0].dataset == sweep.runs[0].dataset
        assert restored.stages == list(sweep.stages)

    def test_declarative_experiments_with_overrides(self):
        sweep = SweepSpec.from_dict({
            "name": "explicit",
            "base": BASE,
            "datasets": {"d": DATASET},
            "experiments": [
                {"id": "low", "overrides": {"alpha": 5}},
                {"id": "high", "overrides": {"alpha": 95}, "dataset": "d"},
                {"spec": BASE},
            ],
        })
        assert [run.id for run in sweep.runs] == ["low", "high", "run-2"]
        assert sweep.runs[1].experiment.dispersal.alpha == 95
        assert sweep.runs[1].dataset.seed == 5

    def test_duplicate_run_ids_rejected(self):
        run = RunSpec("same", repro.ExperimentSpec.from_dict(BASE))
        with pytest.raises(ValueError, match="duplicate run id"):
            SweepSpec(name="dup", runs=[run, run])

    def test_stage_name_colliding_with_run_rejected(self):
        run = RunSpec("x", repro.ExperimentSpec.from_dict(BASE))
        with pytest.raises(ValueError, match="collides"):
            SweepSpec(name="c", runs=[run],
                      stages=[StageSpec(name="x", aggregator="final-metrics")])

    def test_unknown_dataset_source_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset source"):
            DatasetSpec(source="no-such-source")

    def test_unknown_sweep_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown SweepSpec fields"):
            SweepSpec.from_dict({"name": "x", "grids": {}})

    def test_callable_aggregator_does_not_serialize(self):
        stage = StageSpec(name="s", aggregator=lambda ctx: None)
        with pytest.raises(ValueError, match="callable"):
            stage.to_dict()

    def test_mini_source_matches_benchmark_datasets(self):
        from repro.data import MINI_SPECS, generate_dataset
        from repro.utils.rng import RngFactory

        from repro.artifacts.checkpoint import dataset_fingerprint

        name = "movielens-mini"
        built = DatasetSpec(source="mini", name=name, seed=2024).build()
        expected = generate_dataset(
            MINI_SPECS[name], rng=RngFactory(2024).spawn(f"dataset-{name}")
        )
        assert built.num_users == expected.num_users
        assert dataset_fingerprint(built) == dataset_fingerprint(expected)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_stable_and_sensitive(self):
        spec = repro.ExperimentSpec.from_dict(BASE)
        base = spec.fingerprint("datasetsha")
        assert base == spec.fingerprint("datasetsha")          # deterministic
        assert base != spec.fingerprint("othersha")            # dataset-sensitive
        assert base != spec.replace(alpha=50).fingerprint("datasetsha")
        assert base != spec.replace(seed=9).fingerprint("datasetsha")
        assert base != spec.replace(backend="numpy32").fingerprint("datasetsha")

    def test_execution_only_knobs_do_not_change_it(self):
        spec = repro.ExperimentSpec.from_dict(BASE)
        assert spec.fingerprint("d") == spec.replace(
            scheduler="batched", workers=4
        ).fingerprint("d")
        assert spec.fingerprint("d") == spec.replace(batch_size=7).fingerprint("d")
        assert spec.fingerprint("d") == spec.replace(verbose=True).fingerprint("d")

    def test_cross_process_stability(self):
        spec = repro.ExperimentSpec.from_dict(BASE)
        code = (
            "import repro, json, sys; "
            f"spec = repro.ExperimentSpec.from_dict(json.loads({json.dumps(json.dumps(BASE))})); "
            "print(spec.fingerprint('datasetsha'))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            check=True, env={**os.environ, "PYTHONPATH": _src_path()},
        )
        assert out.stdout.strip() == spec.fingerprint("datasetsha")


def _src_path() -> str:
    return str(Path(repro.__file__).resolve().parents[1])


def _comparable(results):
    """Run results stripped of wall time — everything a table is built from.

    ``duration_seconds`` is measured, not computed, so it legitimately
    differs between executions of the same fingerprint; every other field
    must be ``==``.
    """
    return {
        run_id: {k: v for k, v in result.to_dict().items() if k != "duration_seconds"}
        for run_id, result in results.items()
    }


# ----------------------------------------------------------------------
# Artifact store
# ----------------------------------------------------------------------
class TestArtifactStore:
    def _result(self):
        return repro.run(repro.ExperimentSpec.from_dict(
            {**BASE, "protocol": {"rounds": 1}, "model": {"embedding_dim": 4}}
        ))

    def test_save_load_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        result = self._result()
        store.save("f" * 8, result)
        assert store.completed("f" * 8)
        assert store.load("f" * 8) == result
        assert store.fingerprints() == ["f" * 8]
        assert len(store) == 1 and "f" * 8 in store

    def test_empty_slot(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load("missing") is None
        assert not store.completed("missing")
        assert store.provenance("missing") is None

    def test_provenance_recorded(self, tmp_path):
        store = ArtifactStore(tmp_path)
        result = self._result()
        store.save("abc", result)
        prov = store.provenance("abc")
        assert prov["spec_fingerprint"] == result.spec.fingerprint()
        assert prov["backend"] == result.spec.backend
        assert prov["repro_version"] == repro.__version__
        assert prov["wall_time_seconds"] == result.duration_seconds

    def test_temp_dirs_are_not_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        (tmp_path / ".tmp-deadbeef-123").mkdir()
        (tmp_path / ".tmp-deadbeef-123" / "result.json").write_text("{}")
        assert store.fingerprints() == []
        assert not store.completed("deadbeef")

    def test_partial_slot_without_result_is_incomplete(self, tmp_path):
        store = ArtifactStore(tmp_path)
        (tmp_path / "deadbeef").mkdir()     # no result.json inside
        assert not store.completed("deadbeef")
        assert store.load("deadbeef") is None
        assert store.fingerprints() == []

    def test_concurrent_save_of_same_fingerprint_is_tolerated(self, tmp_path):
        store = ArtifactStore(tmp_path)
        result = self._result()
        store.save("abc", result)
        store.save("abc", result)           # second writer: keep the winner
        assert store.load("abc") == result

    def test_discard(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.save("abc", self._result())
        assert store.discard("abc") is True
        assert store.discard("abc") is False
        assert store.load("abc") is None

    def test_invalid_fingerprints_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for bad in ("", ".tmp-x", "a/b"):
            with pytest.raises(ValueError):
                store.path(bad)


# ----------------------------------------------------------------------
# Orchestrator
# ----------------------------------------------------------------------
class TestSweepRunner:
    def test_serial_equals_parallel_equals_direct(self, tmp_path):
        sweep = tiny_sweep()
        serial = run_sweep(sweep, store=tmp_path / "serial", workers=1)
        parallel = run_sweep(sweep, store=tmp_path / "parallel", workers=2)
        assert _comparable(serial.results) == _comparable(parallel.results)
        # ... and both match a bare repro.run on the same spec and dataset.
        run = sweep.runs[0]
        direct = repro.run(run.experiment, run.dataset.build())
        got = serial.results[run.id]
        assert got.final == direct.final
        assert got.history == direct.history
        assert got.communication == direct.communication

    def test_second_invocation_is_all_cache_hits(self, tmp_path):
        sweep = tiny_sweep()
        first = run_sweep(sweep, store=tmp_path, workers=1)
        second = run_sweep(sweep, store=tmp_path, workers=1)
        assert first.report.executed == 2 and first.report.cache_hits == 0
        assert second.report.executed == 0 and second.report.cache_hits == 2
        assert second.results == first.results
        assert second.report.saved_seconds > 0

    def test_identical_runs_dedupe_within_a_sweep(self, tmp_path):
        base = repro.ExperimentSpec.from_dict(BASE)
        runs = [RunSpec(f"copy-{i}", base, DatasetSpec(**DATASET)) for i in range(3)]
        outcome = run_sweep(SweepSpec(name="dedupe", runs=runs), store=tmp_path,
                            workers=1)
        assert outcome.report.total_runs == 3
        assert outcome.report.executed == 1 and outcome.report.cache_hits == 2
        assert outcome.results["copy-0"] == outcome.results["copy-2"]

    def test_stage_dag_order_and_wiring(self, tmp_path):
        order = []

        def tracking(name):
            def aggregate(ctx: StageContext):
                order.append(name)
                return {"runs": sorted(ctx.results), "stages": sorted(ctx.stages)}
            return aggregate

        sweep = tiny_sweep(stages=[
            StageSpec(name="c", aggregator=tracking("c"), needs=("b",)),
            StageSpec(name="b", aggregator=tracking("b"), needs=("a", "alpha=10")),
            StageSpec(name="a", aggregator=tracking("a")),
        ])
        outcome = run_sweep(sweep, store=tmp_path, workers=1)
        assert order == ["a", "b", "c"]
        assert outcome.stages["a"]["runs"] == ["alpha=10", "alpha=30"]  # ALL_RUNS
        assert outcome.stages["b"] == {"runs": ["alpha=10"], "stages": ["a"]}
        assert outcome.stages["c"] == {"runs": [], "stages": ["b"]}
        assert outcome["a"] == outcome.stages["a"]
        assert outcome["alpha=10"] == outcome.results["alpha=10"]

    def test_stage_cycle_rejected_before_any_training(self, tmp_path):
        sweep = tiny_sweep(stages=[
            StageSpec(name="a", aggregator="final-metrics", needs=("b",)),
            StageSpec(name="b", aggregator="final-metrics", needs=("a",)),
        ])
        with pytest.raises(ValueError, match="cycle"):
            Sweep(sweep, store=tmp_path)
        assert list((tmp_path).iterdir()) == []   # nothing executed

    def test_stage_unknown_need_rejected(self, tmp_path):
        sweep = tiny_sweep(stages=[
            StageSpec(name="a", aggregator="final-metrics", needs=("ghost",)),
        ])
        with pytest.raises(ValueError, match="unknown node"):
            Sweep(sweep, store=tmp_path)

    def test_unknown_aggregator_name_rejected(self, tmp_path):
        sweep = tiny_sweep(stages=[StageSpec(name="a", aggregator="no-such")])
        with pytest.raises(ValueError, match="unknown aggregator"):
            run_sweep(sweep, store=tmp_path, workers=1)

    def test_failed_run_raises_sweep_error_and_keeps_completed(
        self, tmp_path, exploding_trainer
    ):
        good = repro.ExperimentSpec.from_dict(BASE)
        bad = repro.ExperimentSpec(trainer=exploding_trainer)
        sweep = SweepSpec(name="failing", runs=[
            RunSpec("good", good, DatasetSpec(**DATASET)),
            RunSpec("bad", bad, DatasetSpec(**DATASET)),
        ])
        with pytest.raises(SweepError) as excinfo:
            run_sweep(sweep, store=tmp_path, workers=1)
        assert set(excinfo.value.failures) == {"bad"}
        assert "deliberate test failure" in excinfo.value.failures["bad"]
        # The good run's artifact survived; a retry would only run "bad".
        store = ArtifactStore(tmp_path)
        assert len(store) == 1

    def test_report_round_trip(self, tmp_path):
        outcome = run_sweep(tiny_sweep(), store=tmp_path / "s", workers=1)
        path = outcome.report.save(tmp_path / "report.json")
        restored = SweepReport.from_dict(json.loads(path.read_text()))
        assert restored.to_dict() == outcome.report.to_dict()
        assert restored.total_runs == 2
        assert "sweep 'tiny'" in restored.summary()

    def test_telemetry_content(self, tmp_path):
        outcome = run_sweep(tiny_sweep(), store=tmp_path, workers=1)
        by_id = {t.run_id: t for t in outcome.report.runs}
        assert set(by_id) == {"alpha=10", "alpha=30"}
        assert all(not t.cached for t in by_id.values())
        assert all(t.trainer == "ptf" for t in by_id.values())
        assert all(t.wall_time_seconds > 0 for t in by_id.values())

    def test_backend_mix_in_one_sweep(self, tmp_path):
        sweep = tiny_sweep(grid={"backend": ["numpy", "numpy32"]})
        outcome = run_sweep(sweep, store=tmp_path, workers=1)
        assert outcome.results["backend=numpy"].spec.backend == "numpy"
        assert outcome.results["backend=numpy32"].spec.backend == "numpy32"
        # Distinct fingerprints: both executed, nothing deduped.
        assert outcome.report.executed == 2


# ----------------------------------------------------------------------
# Crash resume
# ----------------------------------------------------------------------
_DRIVER = """
import sys
sys.path.insert(0, {src!r})
from repro.sweep import SweepSpec, run_sweep

sweep = SweepSpec.from_json(open({sweep_path!r}).read())
outcome = run_sweep(sweep, store={store!r}, workers=1)
print("COMPLETED", outcome.report.executed)
"""


class TestCrashResume:
    N_RUNS = 4

    def _sweep(self):
        return tiny_sweep("resume", grid={"alpha": [10, 30, 50, 70]})

    def test_sigkill_then_resume_executes_exactly_the_missing_runs(self, tmp_path):
        sweep = self._sweep()
        sweep_path = tmp_path / "sweep.json"
        sweep_path.write_text(sweep.to_json())
        store_root = tmp_path / "store"
        driver = _DRIVER.format(src=_src_path(), sweep_path=str(sweep_path),
                                store=str(store_root))

        # Start a serial sweep in a subprocess and SIGKILL it once at
        # least one artifact has completed (but before all N finish).
        proc = subprocess.Popen(
            [sys.executable, "-c", driver],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        )
        store = ArtifactStore(store_root)
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if len(store) >= 1 or proc.poll() is not None:
                break
            time.sleep(0.05)
        assert proc.poll() is None, (
            "sweep finished before it could be killed; shrink the kill "
            f"threshold (stdout={proc.stdout.read()!r})"
        )
        proc.kill()
        proc.wait()

        # Re-count *after* the kill: K artifacts survived the crash.
        completed = len(store)
        assert 1 <= completed < self.N_RUNS
        # Atomicity: no half-written artifact slots, only temp dirs at worst.
        for fingerprint in store.fingerprints():
            assert store.load(fingerprint) is not None

        # Resume: the re-invocation executes exactly N - K runs...
        out = subprocess.run(
            [sys.executable, "-c", driver],
            capture_output=True, text=True, check=True, timeout=600,
        )
        assert f"COMPLETED {self.N_RUNS - completed}" in out.stdout

        # ... and the final table == an uninterrupted serial sweep.
        uninterrupted = run_sweep(self._sweep(), store=tmp_path / "fresh",
                                  workers=1)
        resumed = run_sweep(self._sweep(), store=store_root, workers=1)
        assert resumed.report.executed == 0          # everything cached now
        assert _comparable(resumed.results) == _comparable(uninterrupted.results)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def _invoke(self, *argv):
        from repro.sweep.__main__ import main
        return main(list(argv))

    def test_end_to_end(self, tmp_path, capsys):
        sweep = tiny_sweep(stages=[StageSpec(name="m", aggregator="final-metrics")])
        sweep_path = tmp_path / "sweep.json"
        sweep_path.write_text(sweep.to_json())
        report_path = tmp_path / "report.json"
        code = self._invoke(str(sweep_path), "--store", str(tmp_path / "store"),
                            "--workers", "1", "--report", str(report_path),
                            "--quiet")
        captured = capsys.readouterr()
        assert code == 0
        report = SweepReport.load(report_path)
        assert report.executed == 2
        stages = json.loads(captured.out.rsplit("\n", 2)[0])  # summary is last line
        assert set(stages["m"]) == {"alpha=10", "alpha=30"}

        # Second invocation: all cache hits, zero training.
        code = self._invoke(str(sweep_path), "--store", str(tmp_path / "store"),
                            "--workers", "1", "--report", str(report_path),
                            "--quiet")
        assert code == 0
        assert SweepReport.load(report_path).executed == 0

    def test_unreadable_file_is_usage_error(self, tmp_path):
        assert self._invoke(str(tmp_path / "missing.json")) == 2

    def test_invalid_spec_is_usage_error(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x"}))   # no runs
        assert self._invoke(str(bad)) == 2


# ----------------------------------------------------------------------
# stage_order unit coverage (no training involved)
# ----------------------------------------------------------------------
def test_stage_order_is_deterministic():
    base = repro.ExperimentSpec.from_dict(BASE)
    sweep = SweepSpec(
        name="order",
        runs=[RunSpec("r", base)],
        stages=[
            StageSpec(name="z", aggregator="final-metrics"),
            StageSpec(name="a", aggregator="final-metrics"),
            StageSpec(name="m", aggregator="final-metrics", needs=("z", "a")),
        ],
    )
    assert [stage.name for stage in stage_order(sweep)] == ["a", "z", "m"]


def test_stage_self_dependency_rejected():
    base = repro.ExperimentSpec.from_dict(BASE)
    sweep = SweepSpec(
        name="selfdep", runs=[RunSpec("r", base)],
        stages=[StageSpec(name="s", aggregator="final-metrics", needs=("s",))],
    )
    with pytest.raises(ValueError, match="depends on itself"):
        stage_order(sweep)

"""Tests for the client-simulation execution engine (repro.engine).

The engine's contract is strict: every scheduler produces *bit-identical*
results to the serial reference path on a fixed seed.  The equivalence
tests therefore compare with ``==``, not ``pytest.approx``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core.client import PTFClient
from repro.data import debug_dataset
from repro.engine import (
    ClientBatch,
    ClientTrainingPlan,
    EngineSpec,
    Scheduler,
    BatchedScheduler,
    MultiprocessScheduler,
    create_scheduler,
    stack_models,
)
from repro.experiments import ExperimentSpec
from repro.utils import RngFactory


def tiny_spec(trainer: str, scheduler: str = "serial", **overrides) -> ExperimentSpec:
    defaults = dict(
        rounds=3,
        client_local_epochs=2,
        server_epochs=1,
        client_batch_size=16,
        server_batch_size=64,
        embedding_dim=8,
        client_mlp_layers=(16, 8),
        server_model="mf",
        local_learning_rate=0.05,
        alpha=10,
        max_users=8,
    )
    defaults.update(overrides)
    spec = ExperimentSpec.from_flat(trainer=trainer, seed=7, **defaults)
    return spec.replace(scheduler=scheduler)


@pytest.fixture
def dataset():
    return debug_dataset(RngFactory(5).spawn("engine-data"), num_users=10,
                         num_items=40, num_interactions=200)


def run_history(result):
    return [record.metrics for record in result.history]


# ----------------------------------------------------------------------
# EngineSpec validation and spec integration
# ----------------------------------------------------------------------
class TestEngineSpec:
    def test_defaults(self):
        spec = EngineSpec()
        assert spec.scheduler == "serial"
        assert spec.max_cohort > 0

    @pytest.mark.parametrize("bad", [
        {"scheduler": "teleport"},
        {"max_cohort": 0},
        {"workers": -1},
        {"fallback": "panic"},
    ])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ValueError):
            EngineSpec(**bad)

    def test_experiment_spec_round_trip(self):
        spec = ExperimentSpec(trainer="ptf", engine={"scheduler": "batched",
                                                     "max_cohort": 32})
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored.engine.scheduler == "batched"
        assert restored.engine.max_cohort == 32
        assert restored == spec
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_flat_field_access(self):
        spec = ExperimentSpec.from_flat(trainer="ptf", scheduler="multiprocess",
                                        workers=2)
        assert spec.engine.scheduler == "multiprocess"
        assert spec.engine.workers == 2

    @pytest.mark.parametrize("name,cls", [
        ("serial", Scheduler),
        ("batched", BatchedScheduler),
        ("multiprocess", MultiprocessScheduler),
    ])
    def test_create_scheduler(self, name, cls):
        scheduler = create_scheduler(EngineSpec(scheduler=name))
        assert type(scheduler) is cls
        assert scheduler.name == name

    def test_create_scheduler_default_is_serial(self):
        assert create_scheduler().name == "serial"


# ----------------------------------------------------------------------
# Bit-identical equivalence across schedulers
# ----------------------------------------------------------------------
class TestSchedulerEquivalence:
    @pytest.mark.parametrize("trainer", ["ptf", "fcf", "fedmf"])
    def test_batched_matches_serial(self, trainer, dataset):
        serial = repro.run(tiny_spec(trainer, "serial"), dataset)
        batched = repro.run(tiny_spec(trainer, "batched"), dataset)
        assert serial.final.as_dict() == batched.final.as_dict()
        assert run_history(serial) == run_history(batched)
        assert serial.communication.to_dict() == batched.communication.to_dict()

    def test_batched_matches_serial_metamf(self, dataset):
        serial = repro.run(tiny_spec("metamf", "serial"), dataset)
        batched = repro.run(tiny_spec("metamf", "batched"), dataset)
        assert serial.final.as_dict() == batched.final.as_dict()
        assert run_history(serial) == run_history(batched)

    def test_batched_matches_serial_with_partial_participation(self, dataset):
        serial = repro.run(tiny_spec("ptf", "serial", client_fraction=0.5), dataset)
        batched = repro.run(tiny_spec("ptf", "batched", client_fraction=0.5), dataset)
        assert serial.final.as_dict() == batched.final.as_dict()
        assert run_history(serial) == run_history(batched)

    def test_batched_matches_serial_small_cohort_chunks(self, dataset):
        serial = repro.run(tiny_spec("ptf", "serial"), dataset)
        chunked = repro.run(
            tiny_spec("ptf", "batched").replace(max_cohort=3), dataset
        )
        assert serial.final.as_dict() == chunked.final.as_dict()
        assert run_history(serial) == run_history(chunked)

    @pytest.mark.parametrize("trainer", ["ptf", "fcf"])
    def test_multiprocess_matches_serial(self, trainer, dataset):
        serial = repro.run(tiny_spec(trainer, "serial"), dataset)
        multi = repro.run(
            tiny_spec(trainer, "multiprocess").replace(workers=2), dataset
        )
        assert serial.final.as_dict() == multi.final.as_dict()
        assert run_history(serial) == run_history(multi)

    def test_batched_client_states_match_serial(self):
        """Not just metrics: every model parameter must match bitwise."""
        spec = tiny_spec("ptf")

        def build_clients(engine_spec):
            rngs = RngFactory(3)
            rng = np.random.default_rng(11)
            clients = {
                u: PTFClient(user_id=u, num_items=30,
                             positive_items=np.sort(rng.choice(30, size=6, replace=False)),
                             config=spec, rngs=rngs)
                for u in range(6)
            }
            scheduler = create_scheduler(engine_spec)
            for round_index in range(2):
                scheduler.train_ptf_clients(clients, list(clients), round_index)
            return clients

        serial = build_clients(EngineSpec(scheduler="serial"))
        batched = build_clients(EngineSpec(scheduler="batched"))
        for user in serial:
            a = dict(serial[user].model.named_parameters())
            b = dict(batched[user].model.named_parameters())
            assert a.keys() == b.keys()
            for name in a:
                np.testing.assert_array_equal(
                    a[name].data, b[name].data,
                    err_msg=f"user {user} parameter {name}",
                )
            for attr in ("item_embedding_gmf", "item_embedding_mlp"):
                np.testing.assert_array_equal(
                    getattr(serial[user].model, attr).update_counts,
                    getattr(batched[user].model, attr).update_counts,
                )


# ----------------------------------------------------------------------
# Engine building blocks
# ----------------------------------------------------------------------
class TestClientBatch:
    def make_clients(self, n=4, num_items=25, positives=5):
        spec = tiny_spec("ptf")
        rngs = RngFactory(1)
        rng = np.random.default_rng(2)
        return [
            PTFClient(user_id=u, num_items=num_items,
                      positive_items=np.sort(rng.choice(num_items, size=positives,
                                                        replace=False)),
                      config=spec, rngs=rngs)
            for u in range(n)
        ]

    def test_plan_signature_groups_equal_shapes(self):
        clients = self.make_clients()
        plans = [client.training_plan(0) for client in clients]
        signatures = {plan.signature for plan in plans}
        assert len(signatures) == 1  # equal positives -> equal batch shapes
        assert plans[0].num_batches > 0

    def test_mismatched_signatures_rejected(self):
        clients = self.make_clients()
        plans = [client.training_plan(0) for client in clients]
        items, labels = plans[1].epochs[0][0]
        plans[1].epochs[0][0] = (items[:-1], labels[:-1])
        with pytest.raises(ValueError, match="signature"):
            ClientBatch.for_ptf_clients(clients, plans)

    def test_zero_interaction_client_has_no_plan(self):
        spec = tiny_spec("ptf")
        client = PTFClient(user_id=0, num_items=10,
                           positive_items=np.empty(0, dtype=np.int64),
                           config=spec, rngs=RngFactory(0))
        assert client.training_plan(0) is None
        assert client.local_train(0) == 0.0

    def test_stack_models_rejects_unknown_architecture(self):
        class Strange:
            pass

        assert stack_models([Strange()], user_rows=[0]) is None

    def test_fallback_serial_for_unsupported_model(self, dataset):
        # "mf" client models have a stacked implementation; force the
        # fallback instead by asking for errors on a fake model.
        scheduler = create_scheduler(EngineSpec(scheduler="batched",
                                                fallback="error"))

        class FakeClient:
            def __init__(self):
                self.model = object()
                self.user_id = 0

            def training_plan(self, round_index):
                return ClientTrainingPlan(
                    user_id=0,
                    epochs=[[(np.zeros(2, dtype=np.int64), np.zeros(2))]],
                )

        with pytest.raises(NotImplementedError):
            scheduler.train_ptf_clients({0: FakeClient()}, [0], 0)


class TestOptimizerStateTransfer:
    def test_adam_state_survives_pickle(self):
        """Index-keyed optimizer state must stay attached across pickling."""
        import pickle

        spec = tiny_spec("ptf")
        client = PTFClient(user_id=0, num_items=20,
                           positive_items=np.array([1, 3, 5]),
                           config=spec, rngs=RngFactory(0))
        client.local_train(0)
        assert client.optimizer.has_state()
        restored = pickle.loads(pickle.dumps(client))
        loss_a = client.local_train(1)
        loss_b = restored.local_train(1)
        assert loss_a == loss_b
        for (_, p), (_, q) in zip(client.model.named_parameters(),
                                  restored.model.named_parameters()):
            np.testing.assert_array_equal(p.data, q.data)

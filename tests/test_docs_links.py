"""Internal link check for the documentation suite.

Walks every markdown link in README.md and docs/*.md and asserts that
relative targets exist on disk and that ``#anchors`` name a real heading
in the target file.  Runs in tier-1 and in the CI ``docs`` job, so docs
cannot silently drift from the tree they describe.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _anchors(markdown: str) -> set:
    """GitHub-style slugs for every heading in a markdown document."""
    slugs = set()
    for heading in _HEADING.findall(markdown):
        slug = heading.strip().lower()
        slug = re.sub(r"[^\w\s-]", "", slug)
        slug = re.sub(r"\s+", "-", slug)
        slugs.add(slug)
    return slugs


def _links(markdown: str):
    return _LINK.findall(markdown)


@pytest.mark.parametrize("doc_path", DOC_FILES, ids=lambda p: p.name)
def test_internal_links_resolve(doc_path):
    assert doc_path.exists(), f"missing documentation file {doc_path}"
    text = doc_path.read_text(encoding="utf-8")
    problems = []
    for target in _links(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        resolved = (doc_path.parent / base).resolve() if base else doc_path
        if base and not resolved.exists():
            problems.append(f"{target}: file not found")
            continue
        if anchor:
            if resolved.suffix != ".md":
                continue
            if anchor not in _anchors(resolved.read_text(encoding="utf-8")):
                problems.append(f"{target}: no heading for anchor")
    assert not problems, f"broken links in {doc_path.name}: {problems}"


def test_docs_suite_is_complete():
    names = {path.name for path in DOC_FILES}
    assert {
        "README.md", "architecture.md", "api.md", "serving.md", "reproducing.md"
    } <= names

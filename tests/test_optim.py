"""Tests for optimizers and learning-rate schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim import SGD, Adam, ConstantLR, ExponentialLR, StepLR
from repro.tensor import Tensor


def _quadratic_problem(seed=0):
    """A convex quadratic: minimize ||x - target||^2."""
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(0, 1, size=5), requires_grad=True)
    target = rng.normal(0, 1, size=5)

    def loss_fn():
        diff = x - Tensor(target)
        return (diff * diff).sum()

    return x, target, loss_fn


class TestSGD:
    def test_single_step_matches_formula(self):
        x = Tensor(np.array([1.0, -2.0]), requires_grad=True)
        optimizer = SGD([x], lr=0.1)
        (x * x).sum().backward()
        optimizer.step()
        np.testing.assert_allclose(x.data, [1.0 - 0.1 * 2.0, -2.0 + 0.1 * 4.0])

    def test_converges_on_quadratic(self):
        x, target, loss_fn = _quadratic_problem()
        optimizer = SGD([x], lr=0.1)
        for _ in range(100):
            loss = loss_fn()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(x.data, target, atol=1e-3)

    def test_momentum_accelerates(self):
        x_plain, target, loss_plain = _quadratic_problem(seed=1)
        x_momentum = Tensor(x_plain.data.copy(), requires_grad=True)

        def loss_momentum():
            diff = x_momentum - Tensor(target)
            return (diff * diff).sum()

        plain = SGD([x_plain], lr=0.02)
        momentum = SGD([x_momentum], lr=0.02, momentum=0.9)
        for _ in range(30):
            for optimizer, loss_fn, parameter in (
                (plain, loss_plain, x_plain),
                (momentum, loss_momentum, x_momentum),
            ):
                loss = loss_fn()
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
        assert loss_momentum().item() < loss_plain().item()

    def test_weight_decay_shrinks_parameters(self):
        x = Tensor(np.array([10.0]), requires_grad=True)
        optimizer = SGD([x], lr=0.1, weight_decay=0.5)
        (x * 0.0).sum().backward()
        optimizer.step()
        assert abs(x.data[0]) < 10.0

    def test_skips_parameters_without_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        SGD([x], lr=0.1).step()
        np.testing.assert_allclose(x.data, [1.0])

    def test_invalid_arguments(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([x], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([x], lr=0.1, momentum=1.5)


class TestAdam:
    def test_converges_on_quadratic(self):
        x, target, loss_fn = _quadratic_problem(seed=2)
        optimizer = Adam([x], lr=0.05)
        for _ in range(400):
            loss = loss_fn()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(x.data, target, atol=1e-2)

    def test_first_step_size_is_learning_rate(self):
        # With bias correction the first Adam step is ~lr in the gradient
        # direction regardless of the gradient magnitude.
        x = Tensor(np.array([100.0]), requires_grad=True)
        optimizer = Adam([x], lr=0.01)
        (x * 3.0).sum().backward()
        optimizer.step()
        assert x.data[0] == pytest.approx(100.0 - 0.01, abs=1e-6)

    def test_invalid_betas(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        with pytest.raises(ValueError):
            Adam([x], lr=0.01, betas=(1.5, 0.9))

    def test_state_is_per_parameter(self):
        a = Tensor(np.array([1.0]), requires_grad=True)
        b = Tensor(np.array([1.0]), requires_grad=True)
        optimizer = Adam([a, b], lr=0.01)
        (a * 1.0).sum().backward()
        optimizer.step()
        # Only ``a`` should have moved.
        assert a.data[0] != 1.0
        assert b.data[0] == 1.0

    def test_weight_decay(self):
        x = Tensor(np.array([5.0]), requires_grad=True)
        optimizer = Adam([x], lr=0.1, weight_decay=0.1)
        (x * 0.0).sum().backward()
        optimizer.step()
        assert x.data[0] < 5.0


class TestSchedulers:
    def _optimizer(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        return Adam([x], lr=0.1)

    def test_constant(self):
        optimizer = self._optimizer()
        scheduler = ConstantLR(optimizer)
        for _ in range(5):
            assert scheduler.step() == pytest.approx(0.1)

    def test_step_lr(self):
        optimizer = self._optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        rates = [scheduler.step() for _ in range(4)]
        assert rates == pytest.approx([0.1, 0.05, 0.05, 0.025])

    def test_step_lr_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(self._optimizer(), step_size=0)

    def test_exponential_lr(self):
        optimizer = self._optimizer()
        scheduler = ExponentialLR(optimizer, gamma=0.9)
        assert scheduler.step() == pytest.approx(0.09)
        assert scheduler.step() == pytest.approx(0.081)

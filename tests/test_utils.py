"""Tests for RNG management, logging and timing utilities."""

from __future__ import annotations

import logging

import numpy as np

from repro.utils import RngFactory, Timer, get_logger, seeded_rng


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(7).spawn("component")
        b = RngFactory(7).spawn("component")
        np.testing.assert_array_equal(a.random(5), b.random(5))

    def test_different_names_give_different_streams(self):
        factory = RngFactory(7)
        a = factory.spawn("alpha").random(5)
        b = factory.spawn("beta").random(5)
        assert not np.allclose(a, b)

    def test_different_seeds_give_different_streams(self):
        a = RngFactory(1).spawn("x").random(5)
        b = RngFactory(2).spawn("x").random(5)
        assert not np.allclose(a, b)

    def test_indexed_spawning_is_deterministic(self):
        a = RngFactory(3).spawn_indexed("client", 42).random(3)
        b = RngFactory(3).spawn_indexed("client", 42).random(3)
        np.testing.assert_array_equal(a, b)

    def test_indexed_spawning_varies_with_index(self):
        factory = RngFactory(3)
        a = factory.spawn_indexed("client", 1).random(3)
        b = factory.spawn_indexed("client", 2).random(3)
        assert not np.allclose(a, b)

    def test_adding_components_does_not_perturb_existing_streams(self):
        # The stream for one name must not depend on whether other names
        # were spawned before it.
        lone = RngFactory(11).spawn("target").random(4)
        factory = RngFactory(11)
        factory.spawn("other-a")
        factory.spawn("other-b")
        np.testing.assert_array_equal(factory.spawn("target").random(4), lone)

    def test_seeded_rng_reproducible(self):
        np.testing.assert_array_equal(seeded_rng(5).random(3), seeded_rng(5).random(3))


class TestLoggingAndTimer:
    def test_get_logger_is_singleton_per_name(self):
        assert get_logger("repro-test") is get_logger("repro-test")

    def test_get_logger_has_single_handler(self):
        logger = get_logger("repro-test-handlers")
        get_logger("repro-test-handlers")
        assert len(logger.handlers) == 1

    def test_logger_level(self):
        logger = get_logger("repro-test-level", level=logging.WARNING)
        assert logger.level == logging.WARNING

    def test_timer_measures_elapsed_time(self):
        with Timer() as timer:
            total = sum(range(10000))
        assert total > 0
        assert timer.elapsed >= 0.0

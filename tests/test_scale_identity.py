"""Bit-identity sweep for the bounded-memory execution path.

The tentpole contract of the sparse/sharded engine: ``payload="sparse"``
and ``shard_size=N`` are pure memory knobs — every trainer in the registry
produces ``==``-identical training results (history, final metrics, model
parameters) under every scheduler, with and without partial participation
and fault injection.  Communication is the one quantity that legitimately
changes: sparse uploads are metered from the rows actually shipped, which
this module pins against independently re-derived per-client touched
counts (the over-counting fix for the Table IV reproduction).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.artifacts import CheckpointEveryK
from repro.data import debug_dataset
from repro.engine import EngineSpec, PAYLOAD_FORMATS
from repro.experiments.registry import available_trainers, get_trainer
from repro.experiments.result import RunResult
from repro.experiments.spec import ExperimentSpec
from repro.federated.base import FederatedConfig, build_local_plan
from repro.federated.communication import (
    FLOAT_BYTES,
    INT_BYTES,
    dense_parameter_bytes,
    sparse_parameter_bytes,
)
from repro.federated.fcf import FCF
from repro.federated.fedmf import FedMF
from repro.federated.metamf import MetaMF
from repro.utils.rng import RngFactory

SCHEDULERS = ("serial", "batched", "multiprocess")
ALL_TRAINERS = ("ptf", "fcf", "fedmf", "metamf", "centralized")
#: Trainers whose parameter exchange actually changes format under
#: ``payload="sparse"`` — their ledger legitimately differs from dense.
SPARSE_EXCHANGE_TRAINERS = ("fcf", "fedmf", "metamf")

ASYNC_FAULTS = {
    "dropout": 0.3,
    "deadline": 1.0,
    "latency_range": (0.5, 2.5),
    "aggregation": "async",
    "max_staleness": 2,
}


def _dataset():
    """The sweep's dataset — rebuilt identically for every run."""
    return debug_dataset(RngFactory(12345).spawn("scale-data"), num_users=25,
                         num_items=50, num_interactions=500)


def _spec(trainer, scheduler="serial", payload="dense", shard_size=0,
          scenario=None, rounds=2, client_fraction=1.0):
    return ExperimentSpec(
        trainer=trainer,
        protocol={"rounds": rounds, "client_local_epochs": 1,
                  "server_epochs": 1, "client_fraction": client_fraction},
        evaluation={"max_users": 6},
        engine={"scheduler": scheduler, "workers": 2,
                "payload": payload, "shard_size": shard_size},
        scenario=scenario or {},
    )


def _training_fingerprint(result: RunResult):
    """Everything that must be bit-identical regardless of payload format."""
    return (
        [record.to_dict() for record in result.history],
        result.final,
        result.participation,
    )


_REFERENCE_CACHE = {}


def _dense_reference(trainer, **spec_overrides) -> RunResult:
    key = (trainer, repr(sorted(spec_overrides.items())))
    if key not in _REFERENCE_CACHE:
        _REFERENCE_CACHE[key] = repro.run(
            _spec(trainer, **dict(spec_overrides)), _dataset()
        )
    return _REFERENCE_CACHE[key]


def _serving_parameters(spec, dataset):
    adapter = get_trainer(spec.trainer)(spec, dataset)
    adapter.fit()
    return {
        name: parameter.data.copy()
        for name, parameter in adapter.serving_model().named_parameters()
    }


class TestRegistryCoverage:
    def test_sweep_covers_every_registered_trainer(self):
        assert set(ALL_TRAINERS) == set(available_trainers())

    def test_payload_formats_exported(self):
        assert PAYLOAD_FORMATS == ("dense", "sparse")
        with pytest.raises(ValueError, match="payload"):
            EngineSpec(payload="compressed")
        with pytest.raises(ValueError, match="shard_size"):
            EngineSpec(shard_size=-1)


# ----------------------------------------------------------------------
# The tentpole sweep: every trainer × every scheduler × sparse + sharded
# ----------------------------------------------------------------------
class TestSparseShardedIdentity:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("trainer", ALL_TRAINERS)
    def test_matches_dense_serial_reference(self, trainer, scheduler):
        reference = _dense_reference(trainer)
        result = repro.run(
            _spec(trainer, scheduler=scheduler, payload="sparse", shard_size=4),
            _dataset(),
        )
        assert _training_fingerprint(result) == _training_fingerprint(reference)
        if trainer not in SPARSE_EXCHANGE_TRAINERS:
            # PTF's exchange is natively sparse and the centralized trainer
            # has no exchange at all: the knob must be a complete no-op.
            assert result.communication == reference.communication

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("trainer", ["fcf", "fedmf", "metamf", "ptf"])
    def test_dense_sharding_changes_nothing_at_all(self, trainer, scheduler):
        """shard_size alone is invisible — including on the wire."""
        reference = _dense_reference(trainer)
        result = repro.run(
            _spec(trainer, scheduler=scheduler, payload="dense", shard_size=3),
            _dataset(),
        )
        assert _training_fingerprint(result) == _training_fingerprint(reference)
        assert result.communication == reference.communication

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("trainer", ["ptf", "fcf", "metamf"])
    def test_partial_participation(self, trainer, scheduler):
        reference = _dense_reference(trainer, client_fraction=0.5)
        result = repro.run(
            _spec(trainer, scheduler=scheduler, payload="sparse", shard_size=4,
                  client_fraction=0.5),
            _dataset(),
        )
        assert _training_fingerprint(result) == _training_fingerprint(reference)

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("trainer", ["ptf", "fcf", "fedmf"])
    def test_with_fault_injection(self, trainer, scheduler):
        """Sparse + sharded under churn/async staleness still replays the
        dense scenario event stream exactly (incl. the sparse stale buffer)."""
        reference = _dense_reference(trainer, scenario=ASYNC_FAULTS, rounds=4)
        result = repro.run(
            _spec(trainer, scheduler=scheduler, payload="sparse", shard_size=4,
                  scenario=ASYNC_FAULTS, rounds=4),
            _dataset(),
        )
        assert _training_fingerprint(result) == _training_fingerprint(reference)

    @pytest.mark.parametrize("trainer", ["fcf", "metamf"])
    def test_served_model_parameters_are_bitwise_equal(self, trainer):
        dense = _serving_parameters(_spec(trainer), _dataset())
        sparse = _serving_parameters(
            _spec(trainer, scheduler="batched", payload="sparse", shard_size=4),
            _dataset(),
        )
        assert dense.keys() == sparse.keys()
        for name in dense:
            np.testing.assert_array_equal(dense[name], sparse[name], err_msg=name)


# ----------------------------------------------------------------------
# Checkpoint / resume with the sparse execution path
# ----------------------------------------------------------------------
class TestSparseResume:
    def test_sparse_async_scenario_resume_bit_identical(self, tmp_path):
        """The sparse stale buffer round-trips through checkpoints."""
        spec = _spec("fcf", scheduler="batched", payload="sparse", shard_size=4,
                     scenario=ASYNC_FAULTS, rounds=4)
        full = repro.run(spec, _dataset())
        callback = CheckpointEveryK(tmp_path / "ckpt", every=2)
        repro.run(spec.replace(rounds=2), _dataset(), callbacks=[callback])
        checkpoints = sorted((tmp_path / "ckpt").iterdir())
        resumed = repro.run(spec, _dataset(), resume_from=checkpoints[-1])
        assert _training_fingerprint(resumed) == _training_fingerprint(full)
        assert resumed.communication == full.communication

    def test_engine_knobs_are_resume_compatible(self, tmp_path):
        """A dense-checkpointed run may resume sparse+sharded: the engine
        section is execution strategy, not experiment identity."""
        dense = _spec("fcf", rounds=4)
        callback = CheckpointEveryK(tmp_path / "ckpt", every=2)
        repro.run(dense.replace(rounds=2), _dataset(), callbacks=[callback])
        checkpoint = sorted((tmp_path / "ckpt").iterdir())[-1]
        sparse = _spec("fcf", scheduler="batched", payload="sparse",
                       shard_size=4, rounds=4)
        resumed = repro.run(sparse, _dataset(), resume_from=checkpoint)
        reference = repro.run(dense, _dataset())
        assert _training_fingerprint(resumed) == _training_fingerprint(reference)


# ----------------------------------------------------------------------
# Communication metering: the ledger reports what actually moves
# ----------------------------------------------------------------------
def _driver_config(payload="dense", scheduler="batched", **overrides):
    return FederatedConfig(
        rounds=2, local_epochs=1, seed=9,
        engine=EngineSpec(scheduler=scheduler, payload=payload,
                          shard_size=4, workers=2),
        **overrides,
    )


def _expected_touched_rows(driver, user, round_index):
    """Re-derive a client's touched item rows from scratch (fresh RNGs)."""
    plan = build_local_plan(
        driver.config, RngFactory(driver.config.seed), user,
        driver.dataset.train_items(user), driver.dataset.num_items, round_index,
    )
    return 0 if plan is None else int(plan.touched_items().size)


class TestSparseMeteringRegression:
    """The Table IV over-counting fix: FedAvg uploads were metered as full
    dense tables even though only the touched rows carry information."""

    def test_dense_meter_pinned(self):
        ds = _dataset()
        driver = FCF(ds, _driver_config(payload="dense"))
        driver.fit()
        table_bytes = dense_parameter_bytes(ds.num_items * driver.config.embedding_dim)
        uploads = [r for r in driver.ledger.records if r.direction == "upload"]
        assert uploads and all(r.num_bytes == table_bytes for r in uploads)
        # Per client-round: one download + one upload of the full table.
        assert driver.ledger.average_client_round_bytes() == 2 * table_bytes

    def test_sparse_uploads_match_rederived_touched_counts(self):
        ds = _dataset()
        driver = FCF(ds, _driver_config(payload="sparse"))
        driver.fit()
        dim = driver.config.embedding_dim
        uploads = [r for r in driver.ledger.records if r.direction == "upload"]
        assert uploads, "no uploads metered"
        for record in uploads:
            assert record.description == "FCF sparse parameter update"
            expected = sparse_parameter_bytes(
                _expected_touched_rows(driver, record.client_id, record.round_index),
                dim,
            )
            assert record.num_bytes == expected, (
                f"client {record.client_id} round {record.round_index}"
            )
        # The download leg stays a dense broadcast.
        downloads = [r for r in driver.ledger.records if r.direction == "download"]
        table_bytes = dense_parameter_bytes(ds.num_items * dim)
        assert all(r.num_bytes == table_bytes for r in downloads)

    def test_fedmf_sparse_values_stay_ciphertexts(self):
        ds = _dataset()
        driver = FedMF(ds, _driver_config(payload="sparse"))
        driver.fit()
        for record in driver.ledger.records:
            if record.direction != "upload":
                continue
            touched = _expected_touched_rows(driver, record.client_id, record.round_index)
            assert record.num_bytes == sparse_parameter_bytes(
                touched, driver.config.embedding_dim,
                value_bytes=driver.ciphertext_bytes,
            )

    def test_metamf_meta_networks_ship_as_dense_blocks(self):
        ds = _dataset()
        driver = MetaMF(ds, _driver_config(payload="sparse"))
        driver.fit()
        dim = driver.config.embedding_dim
        # Meta nets move whole, with no per-row index overhead.
        meta_bytes = (2 * dim * dim + 2 * dim) * FLOAT_BYTES
        for record in driver.ledger.records:
            if record.direction != "upload":
                continue
            touched = _expected_touched_rows(driver, record.client_id, record.round_index)
            assert record.num_bytes == (
                sparse_parameter_bytes(touched, dim) + meta_bytes
            )

    def test_sparse_beats_dense_on_sparse_interactions(self):
        """With a large catalogue and few interactions per client, sparse
        uploads are dramatically cheaper — the quantity the dense meter
        over-counted."""
        ds = debug_dataset(RngFactory(7).spawn("wide-data"), num_users=6,
                           num_items=400, num_interactions=60)
        dense = FCF(ds, _driver_config(payload="dense"))
        dense.fit()
        sparse = FCF(ds, _driver_config(payload="sparse"))
        sparse.fit()

        def upload_total(driver):
            return sum(r.num_bytes for r in driver.ledger.records
                       if r.direction == "upload")

        assert upload_total(sparse) < upload_total(dense) / 4
        # ... while training identically.
        for (name, a), (_, b) in zip(dense.model.named_parameters(),
                                     sparse.model.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)

    def test_index_bytes_are_charged(self):
        """Sparse metering includes the row indices, not just the values —
        a full-table sparse payload costs *more* than the dense broadcast."""
        num_rows, dim = 50, 32
        assert sparse_parameter_bytes(num_rows, dim) == (
            dense_parameter_bytes(num_rows * dim) + num_rows * INT_BYTES
        )

"""Communication budget planning for a federated recommender deployment.

The paper's Table IV compares per-client, per-round traffic.  This script
answers the deployment question behind it: as the item catalogue grows,
how many bytes does each framework push through every client's connection
per round, and what does that mean for a whole training run?

Everything here is computed with the same byte-level cost models the
simulators use (4-byte floats, 64-byte ciphertexts for FedMF's
homomorphic encryption, 12-byte prediction triples).

Run with::

    python examples/communication_budget.py
"""

from __future__ import annotations

from repro.federated import (
    dense_parameter_bytes,
    encrypted_parameter_bytes,
    prediction_triple_bytes,
)
from repro.federated.fedmf import DEFAULT_CIPHERTEXT_BYTES

EMBEDDING_DIM = 32
ROUNDS = 20
AVERAGE_PROFILE = 50          # interactions per user
ALPHA = 30                    # server-dispersed items per round
EXPECTED_BETA = 0.55          # mean of the paper's beta range [0.1, 1]
EXPECTED_GAMMA = 2.5          # mean of the paper's gamma range [1, 4]

CATALOGUE_SIZES = (1_000, 5_000, 10_000, 50_000, 100_000, 500_000)


def per_round_costs(num_items: int) -> dict:
    item_values = num_items * EMBEDDING_DIM
    meta_values = item_values + 2 * (EMBEDDING_DIM * EMBEDDING_DIM + EMBEDDING_DIM)
    upload_triples = int(EXPECTED_BETA * AVERAGE_PROFILE * (1 + EXPECTED_GAMMA))
    return {
        "FCF": 2 * dense_parameter_bytes(item_values),
        "FedMF": 2 * encrypted_parameter_bytes(item_values, DEFAULT_CIPHERTEXT_BYTES),
        "MetaMF": 2 * dense_parameter_bytes(meta_values),
        "PTF-FedRec": prediction_triple_bytes(upload_triples + ALPHA),
    }


def human(num_bytes: float) -> str:
    for unit, factor in (("GB", 2**30), ("MB", 2**20), ("KB", 2**10)):
        if num_bytes >= factor:
            return f"{num_bytes / factor:.2f} {unit}"
    return f"{num_bytes:.0f} B"


def main() -> None:
    print("Per-client, per-round traffic as the item catalogue grows")
    print(f"(embedding dim {EMBEDDING_DIM}, {AVERAGE_PROFILE} interactions/user, "
          f"alpha={ALPHA})\n")
    header = f"{'#items':>10} {'FCF':>12} {'FedMF (HE)':>12} {'MetaMF':>12} {'PTF-FedRec':>12}"
    print(header)
    print("-" * len(header))
    for num_items in CATALOGUE_SIZES:
        costs = per_round_costs(num_items)
        print(f"{num_items:>10,} {human(costs['FCF']):>12} {human(costs['FedMF']):>12} "
              f"{human(costs['MetaMF']):>12} {human(costs['PTF-FedRec']):>12}")

    print(f"\nTotal per client for a full {ROUNDS}-round training run "
          f"(100k-item catalogue):")
    costs = per_round_costs(100_000)
    for method, per_round in costs.items():
        print(f"  {method:<12} {human(per_round * ROUNDS)}")

    print("\nTakeaway: parameter-transmission FedRecs scale with the catalogue")
    print("(every client repeatedly downloads and uploads the full item table),")
    print("while PTF-FedRec scales with the user's own activity and stays in")
    print("the kilobyte range regardless of how large the catalogue grows.")


if __name__ == "__main__":
    main()

"""Quickstart: train PTF-FedRec on a MovieLens-like dataset.

Runs the full parameter transmission-free protocol — client local training,
privacy-protected prediction uploads, server training, confidence-based
hard dispersal — for a handful of rounds on a small synthetic dataset and
prints the server model's ranking quality, the per-client communication
cost and the Top Guess Attack F1.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import PTFConfig, PTFFedRec
from repro.data import movielens_100k
from repro.eval import RankingEvaluator
from repro.utils import RngFactory


def main() -> None:
    rngs = RngFactory(seed=42)

    # A 10%-scale statistical twin of MovieLens-100K (~94 users, ~168 movies).
    dataset = movielens_100k(rngs.spawn("dataset"), scale=0.1)
    print(f"Dataset: {dataset}")
    print(f"Statistics: {dataset.stats().as_row()}")

    # The service provider hides an NGCF model on the server; every client
    # runs the public NeuMF.  Mini-scale training settings (see DESIGN.md).
    config = PTFConfig(
        server_model="ngcf",
        client_model="neumf",
        rounds=10,
        client_local_epochs=3,
        server_epochs=3,
        server_batch_size=128,
        learning_rate=0.01,
        embedding_dim=16,
        client_mlp_layers=(32, 16, 8),
        alpha=30,
        seed=42,
    )
    system = PTFFedRec(dataset, config)

    print("\nTraining PTF-FedRec(NGCF)...")
    for round_index in range(config.rounds):
        summary = system.run_round(round_index)
        print(
            f"  round {summary.round_index:2d}: "
            f"client loss {summary.client_loss:.3f}, "
            f"server loss {summary.server_loss:.3f}, "
            f"{summary.uploaded_records} predictions uploaded"
        )

    result = system.evaluate(k=20)
    attack = system.audit_privacy(guess_ratio=0.2)
    print("\nServer model ranking quality (the hidden, trained recommender):")
    for metric, value in result.as_dict().items():
        print(f"  {metric}: {value:.4f}")
    print(f"\nCommunication: {system.average_client_round_kilobytes():.2f} KB "
          f"per client per round (prediction triples only — no parameters).")
    print(f"Top Guess Attack F1 against the final uploads: {attack.mean_f1:.3f} "
          f"(lower is better for privacy).")

    # For context: an untrained model of the same architecture.
    untrained = RankingEvaluator(dataset, k=20)
    print(f"\nEvaluated {result.num_users_evaluated} users at K={untrained.k}.")


if __name__ == "__main__":
    main()

"""Quickstart: train PTF-FedRec through the unified experiment API.

Builds an :class:`repro.ExperimentSpec`, hands it to :func:`repro.run`, and
reads everything off the returned :class:`repro.RunResult`: per-round
progress, the server model's ranking quality, the per-client communication
cost and the Top Guess Attack F1.

Run with::

    PYTHONPATH=src python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.data import movielens_100k
from repro.utils import RngFactory

SEED = 42


def main() -> None:
    # A 10%-scale statistical twin of MovieLens-100K (~94 users, ~168 movies).
    dataset = movielens_100k(RngFactory(SEED).spawn("dataset"), scale=0.1)
    print(f"Dataset: {dataset}")
    print(f"Statistics: {dataset.stats().as_row()}")

    # The service provider hides an NGCF model on the server; every client
    # runs the public NeuMF.  Mini-scale training settings (see DESIGN.md).
    spec = repro.ExperimentSpec(
        trainer="ptf",
        seed=SEED,
        model={
            "server_model": "ngcf",
            "client_model": "neumf",
            "embedding_dim": 16,
            "client_mlp_layers": (32, 16, 8),
        },
        protocol={
            "rounds": 10,
            "client_local_epochs": 3,
            "server_epochs": 3,
            "server_batch_size": 128,
            "learning_rate": 0.01,
        },
        dispersal={"alpha": 30},
        evaluation={"k": 20, "verbose": True},  # verbose => one line per round
    )

    print("\nTraining PTF-FedRec(NGCF) via repro.run(spec)...")
    result = repro.run(spec, dataset)

    print("\nServer model ranking quality (the hidden, trained recommender):")
    for metric, value in result.final.as_dict().items():
        print(f"  {metric}: {value:.4f}")
    kb = result.communication.average_client_round_kilobytes
    print(f"\nCommunication: {kb:.2f} KB per client per round "
          f"(prediction triples only — no parameters).")
    print(f"Top Guess Attack F1 against the final uploads: {result.privacy.mean_f1:.3f} "
          f"(lower is better for privacy).")
    print(f"\nEvaluated {result.final.num_users_evaluated} users at K={result.final.k} "
          f"in {result.duration_seconds:.1f}s over {result.rounds_completed} rounds.")


if __name__ == "__main__":
    main()

"""Serve live traffic through the gateway and hot-swap the model under it.

The deployment story on top of `examples/model_marketplace.py`: once an
artifact exists, real traffic is not polite pre-batched cohorts — it is
thousands of concurrent single-user queries.  `repro.serve.ServingGateway`
coalesces them into one cohort score pass per tick (micro-batching), and
when the provider trains a better model it swaps in the new checkpoint
*without dropping a single request*: the old model answers every tick
until the replacement is fully loaded, then the gateway flips atomically
between ticks.

The script:

1. **trains** a federated model for a few rounds, checkpointing as it goes,
2. **serves** the first checkpoint under concurrent client threads,
3. **resume-extends** training to more rounds (a strictly better model),
4. **hot-swaps** the gateway to the new checkpoint while the clients keep
   hammering it, and
5. prints the telemetry snapshot (QPS, latency percentiles, batch
   histogram, cache counters, swap count).

Run with::

    PYTHONPATH=src python examples/serving_gateway.py
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

import repro
from repro.artifacts import CheckpointEveryK
from repro.data import movielens_100k
from repro.serve import Rejected, ServingGateway
from repro.utils import RngFactory

SEED = 7
CLIENTS = 8
REQUESTS_PER_CLIENT = 150
TOP_K = 10

SPEC = repro.ExperimentSpec(
    trainer="fcf",
    seed=SEED,
    model={"embedding_dim": 16},
    protocol={"rounds": 2, "client_local_epochs": 2},
    evaluation={"k": TOP_K},
)


def client(gateway: ServingGateway, index: int, num_users: int, served: list) -> None:
    """One simulated device: seeded single-user queries, back to back."""
    rng = np.random.default_rng(SEED + index)
    answered = rejected = 0
    for _ in range(REQUESTS_PER_CLIENT):
        user = int(rng.integers(0, num_users))
        result = gateway.recommend(user, k=TOP_K)
        if isinstance(result, Rejected):
            rejected += 1
        else:
            answered += 1
    served[index] = (answered, rejected)


def main() -> None:
    dataset = movielens_100k(RngFactory(SEED).spawn("dataset"), scale=0.1)
    ckpt_dir = Path(tempfile.mkdtemp(prefix="gateway-"))

    print(f"Dataset: {dataset}")
    print("Training 2 rounds and checkpointing...")
    repro.run(SPEC, dataset, callbacks=[CheckpointEveryK(ckpt_dir / "v1", every=2)])

    gateway = ServingGateway.from_checkpoint(
        ckpt_dir / "v1" / "latest",
        max_batch=64, max_wait_ms=2.0, deadline_ms=500.0,
    )
    print(f"Serving {gateway!r}\n")

    served = [None] * CLIENTS
    threads = [
        threading.Thread(target=client, args=(gateway, i, dataset.num_users, served))
        for i in range(CLIENTS)
    ]
    with gateway:
        for thread in threads:
            thread.start()

        # While traffic is in flight: train 4 more rounds from the same
        # checkpoint (resume-and-extend) and hot-swap the gateway to it.
        print("Clients querying; meanwhile training rounds 3-6 for the swap...")
        repro.run(
            SPEC.replace(rounds=6), dataset,
            resume_from=ckpt_dir / "v1" / "latest",
            callbacks=[CheckpointEveryK(ckpt_dir / "v2", every=6)],
        )
        time.sleep(0.05)  # make sure the swap lands mid-traffic
        gateway.swap(ckpt_dir / "v2" / "latest")
        print("Swap complete: the 6-round model now answers every new tick.")

        for thread in threads:
            thread.join()

    answered = sum(row[0] for row in served)
    rejected = sum(row[1] for row in served)
    print(f"\n{CLIENTS} clients x {REQUESTS_PER_CLIENT} requests: "
          f"{answered} answered, {rejected} rejected")
    print("Telemetry snapshot:")
    print(json.dumps(gateway.stats().to_dict(), indent=2))
    shutil.rmtree(ckpt_dir, ignore_errors=True)


if __name__ == "__main__":
    main()

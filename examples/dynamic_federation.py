"""Dynamic federation: train PTF-FedRec under churn and stragglers.

Enables the ``scenario`` spec section — 20% mid-round client churn plus a
round deadline that part of the cohort misses, with async
staleness-weighted aggregation folding the late payloads back in — and
reads the per-round participation telemetry off the ``RunResult`` next to
the final ranking metrics.  Scenario events are drawn from dedicated
seeded RNG streams, so this run is exactly reproducible and a
``scenario``-free run of the same spec is bit-identical to a build
without the subsystem (see docs/scenarios.md).

Run with::

    PYTHONPATH=src python examples/dynamic_federation.py
"""

from __future__ import annotations

import repro
from repro.data import movielens_100k
from repro.utils import RngFactory

SEED = 7


def main() -> None:
    # A 10%-scale statistical twin of MovieLens-100K — small enough that
    # the whole faulted run finishes in ~30 seconds.
    dataset = movielens_100k(RngFactory(SEED).spawn("dataset"), scale=0.1)
    print(f"Dataset: {dataset}")

    spec = repro.ExperimentSpec(
        trainer="ptf",
        seed=SEED,
        model={"server_model": "mf", "client_model": "mf", "embedding_dim": 16},
        protocol={"rounds": 8, "client_local_epochs": 2, "server_epochs": 2},
        evaluation={"k": 20, "every": 2},
        scenario={
            # Churn: each selected client drops out of a round with p=0.2.
            "dropout": 0.2,
            # Stragglers: latency ~ U(0.5, 2.5) against a deadline of 1.0,
            # so slower clients miss the round by 1-2 rounds of staleness.
            "deadline": 1.0,
            "latency_range": (0.5, 2.5),
            # Fold late payloads in, weighted alpha / (staleness + 1), and
            # discard anything more than 2 rounds late.
            "aggregation": "async",
            "staleness_alpha": 0.5,
            "max_staleness": 2,
        },
    )

    print("\nTraining PTF-FedRec under 20% churn + straggler deadlines...")
    result = repro.run(spec, dataset)

    print("\nPer-round participation (selected / completed / dropped / "
          "straggled / stale payloads applied):")
    for record in result.history:
        if "selected" not in record.metrics:
            continue  # evaluation-only record
        m = record.metrics
        print(f"  round {record.round_index:2d}:  "
              f"{int(m['selected']):3d} selected  "
              f"{int(m['completed']):3d} completed  "
              f"{int(m['dropped']):3d} dropped  "
              f"{int(m['straggled']):3d} straggled  "
              f"{int(m['stale_applied']):3d} stale applied")

    summary = result.participation
    print(f"\nTotals over {summary.rounds} rounds: "
          f"{summary.completed}/{summary.selected} payloads on time "
          f"({summary.completion_rate:.0%} completion), "
          f"{summary.dropped} dropped, {summary.straggled} straggled, "
          f"{summary.stale_applied} stale payloads recovered by async "
          f"aggregation.")

    print("\nFinal server-model ranking quality despite the faults:")
    for metric, value in result.final.as_dict().items():
        print(f"  {metric}: {value:.4f}")
    print(f"\n{result.rounds_completed} rounds in "
          f"{result.duration_seconds:.1f}s.")


if __name__ == "__main__":
    main()

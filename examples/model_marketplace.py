"""Model-IP lifecycle: trial hidden models, ship the winner, serve queries.

The motivation in the paper's introduction: the recommendation model is
the service provider's intellectual property, so the provider wants to
improve and swap its model freely *without ever shipping it to clients*.
In PTF-FedRec the clients only ever see prediction scores, so the
provider can trial different hidden architectures (NeuMF, NGCF, LightGCN)
against the same fleet of client devices and pick the best one.

This example runs that story end to end through the artifact + serving
API added in `repro.artifacts` / `repro.serve`:

1. **train** each candidate server model with periodic checkpointing,
2. **save** — the winning run already lives on disk as a versioned
   artifact (manifest + npz, dataset embedded, spec included),
3. **load** the artifact back in a "deployment" step that shares no
   objects with training, and
4. **serve** batched top-k queries from it — the hidden model still never
   leaves the provider's side.

Run with::

    PYTHONPATH=src python examples/model_marketplace.py
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

import repro
from repro.artifacts import CheckpointEveryK, load_checkpoint
from repro.data import movielens_100k
from repro.serve import Recommender
from repro.utils import RngFactory

CANDIDATE_SERVER_MODELS = ("neumf", "ngcf", "lightgcn")
SEED = 21

BASE_SPEC = repro.ExperimentSpec(
    trainer="ptf",
    seed=SEED,
    model={"client_model": "neumf",   # the public, on-device model never changes
           "embedding_dim": 16, "client_mlp_layers": (32, 16, 8)},
    protocol={"rounds": 10, "client_local_epochs": 3, "server_epochs": 3,
              "server_batch_size": 128, "learning_rate": 0.01},
    evaluation={"k": 20},
)


def trial(dataset, server_model: str, artifact_dir: Path) -> dict:
    """Train one candidate, checkpointing every 5 rounds + at fit end."""
    spec = BASE_SPEC.replace(server_model=server_model)
    result = repro.run(spec, dataset, callbacks=[
        CheckpointEveryK(artifact_dir / server_model, every=5)
    ])
    result.save(artifact_dir / server_model / "result.json")
    return {
        "server_model": server_model,
        "recall": result.final.recall,
        "ndcg": result.final.ndcg,
        "kb_per_round": result.communication.average_client_round_kilobytes,
        "artifact": artifact_dir / server_model / "latest",
    }


def main() -> None:
    dataset = movielens_100k(RngFactory(SEED).spawn("dataset"), scale=0.1)
    artifact_dir = Path(tempfile.mkdtemp(prefix="marketplace-"))
    print(f"Dataset: {dataset}")
    print("Clients always run the public NeuMF; the provider trials hidden server models.\n")

    header = (f"{'Hidden server model':<20} {'Recall@20':>10} {'NDCG@20':>10} "
              f"{'KB/client/round':>16}")
    print(header)
    print("-" * len(header))
    results = []
    for server_model in CANDIDATE_SERVER_MODELS:
        row = trial(dataset, server_model, artifact_dir)
        results.append(row)
        print(f"{row['server_model'].upper():<20} {row['recall']:>10.4f} "
              f"{row['ndcg']:>10.4f} {row['kb_per_round']:>16.2f}")

    best = max(results, key=lambda row: row["ndcg"])
    print(f"\nDeploying {best['server_model'].upper()} from its artifact: {best['artifact']}")

    # --- "deployment": a fresh process would start here -------------------
    checkpoint = load_checkpoint(best["artifact"])
    service = Recommender.from_checkpoint(best["artifact"])
    print(f"Artifact: schema v{checkpoint.schema_version}, trainer={checkpoint.trainer!r}, "
          f"{checkpoint.rounds_completed} rounds, "
          f"{service.model.num_parameters():,} hidden parameters")
    cohort = dataset.users[:5] + [10_000]            # 5 real users + 1 cold start
    ranked = service.recommend(cohort, k=5)
    for user, items in zip(cohort, ranked):
        label = "cold-start -> popularity" if user == 10_000 else "personalized"
        print(f"  user {user:>5} ({label:<24}): top-5 items {items.tolist()}")

    # Hot users hit the LRU score cache on repeat traffic.
    service.recommend(cohort, k=5)
    print(f"Cache after repeat query: {service.cache_hits} hits / "
          f"{service.cache_misses} misses")

    print("\nAt no point did the hidden model's parameters, or even its")
    print("architecture, leave the server: training exchanged prediction scores")
    print("only, and serving answers queries from the provider-side artifact.")
    shutil.rmtree(artifact_dir, ignore_errors=True)


if __name__ == "__main__":
    main()

"""Model-IP scenario: the server iterates on its proprietary model.

The motivation in the paper's introduction: the recommendation model is the
service provider's intellectual property, so the provider wants to improve
and swap its model freely *without ever shipping it to clients*.  In
PTF-FedRec the clients only ever see prediction scores, so the provider can
trial different hidden architectures (NeuMF, NGCF, LightGCN) against the
same fleet of client devices and pick the best one — here, one
``spec.replace(server_model=...)`` per candidate.  The hidden parameter
count comes from the trainer adapter's underlying system, which the
registry exposes for exactly this kind of inspection.

Run with::

    PYTHONPATH=src python examples/model_marketplace.py
"""

from __future__ import annotations

import repro
from repro.data import movielens_100k
from repro.experiments import create_trainer
from repro.utils import RngFactory

CANDIDATE_SERVER_MODELS = ("neumf", "ngcf", "lightgcn")
SEED = 21

BASE_SPEC = repro.ExperimentSpec(
    trainer="ptf",
    seed=SEED,
    model={"client_model": "neumf",   # the public, on-device model never changes
           "embedding_dim": 16, "client_mlp_layers": (32, 16, 8)},
    protocol={"rounds": 10, "client_local_epochs": 3, "server_epochs": 3,
              "server_batch_size": 128, "learning_rate": 0.01},
    evaluation={"k": 20},
)


def trial(dataset, server_model: str) -> dict:
    spec = BASE_SPEC.replace(server_model=server_model)
    trainer = create_trainer(spec, dataset)
    trainer.fit()
    result = trainer.evaluate()
    server_params = sum(p.size for p in trainer.system.server.model.parameters())
    return {
        "server_model": server_model.upper(),
        "recall": result.recall,
        "ndcg": result.ndcg,
        "hidden_parameters": server_params,
        "kb_per_round": trainer.communication_summary().average_client_round_kilobytes,
    }


def main() -> None:
    dataset = movielens_100k(RngFactory(SEED).spawn("dataset"), scale=0.1)
    print(f"Dataset: {dataset}")
    print("Clients always run the public NeuMF; the provider trials hidden server models.\n")

    header = (f"{'Hidden server model':<20} {'Recall@20':>10} {'NDCG@20':>10} "
              f"{'Hidden params':>14} {'KB/client/round':>16}")
    print(header)
    print("-" * len(header))
    results = []
    for server_model in CANDIDATE_SERVER_MODELS:
        row = trial(dataset, server_model)
        results.append(row)
        print(f"{row['server_model']:<20} {row['recall']:>10.4f} {row['ndcg']:>10.4f} "
              f"{row['hidden_parameters']:>14,} {row['kb_per_round']:>16.2f}")

    best = max(results, key=lambda row: row["ndcg"])
    print(f"\nThe provider would deploy {best['server_model']} — and at no point did any")
    print("of its parameters, or even its architecture, leave the server: clients only")
    print("ever exchanged prediction scores, and the traffic stayed identical across")
    print("candidates because it depends on the protocol, not on the hidden model.")


if __name__ == "__main__":
    main()

"""Movie recommendation scenario: centralized vs federated vs PTF-FedRec.

Reproduces the spirit of the paper's Table III on a small MovieLens-like
dataset: how much ranking quality does each training regime deliver, and
what does it cost in communication?

* Centralized NGCF — the ceiling: one party sees all raw data.
* FCF / FedMF / MetaMF — traditional parameter-transmission FedRecs: raw
  data stays on devices but the model (and megabytes of parameters per
  round) are exposed to every participant.
* PTF-FedRec(NGCF) — the paper's framework: raw data stays on devices AND
  the server model stays hidden; only kilobytes of predictions move.

Run with::

    python examples/movie_recommendation.py
"""

from __future__ import annotations

from repro.centralized import CentralizedConfig, CentralizedTrainer
from repro.core import PTFConfig, PTFFedRec
from repro.data import movielens_100k
from repro.federated import FCF, FederatedConfig, FedMF, MetaMF
from repro.models import create_model
from repro.utils import RngFactory

TOP_K = 20
SEED = 7


def evaluate_centralized(dataset) -> dict:
    model = create_model("ngcf", dataset.num_users, dataset.num_items,
                         embedding_dim=16, rng=RngFactory(SEED).spawn("central"))
    trainer = CentralizedTrainer(
        model, dataset,
        CentralizedConfig(epochs=30, batch_size=256, learning_rate=0.01,
                          l2_weight=5e-4, seed=SEED),
    )
    trainer.fit()
    result = trainer.evaluate(k=TOP_K)
    return {"method": "Centralized NGCF", "recall": result.recall, "ndcg": result.ndcg,
            "kb_per_round": 0.0, "model_exposed": "n/a (no federation)"}


def evaluate_baseline(dataset, name) -> dict:
    factories = {"FCF": FCF, "FedMF": FedMF, "MetaMF": MetaMF}
    system = factories[name](dataset, FederatedConfig(rounds=10, local_epochs=2,
                                                      embedding_dim=16, seed=SEED))
    system.fit()
    result = system.evaluate(k=TOP_K)
    return {"method": name, "recall": result.recall, "ndcg": result.ndcg,
            "kb_per_round": system.average_client_round_kilobytes(),
            "model_exposed": "yes (parameters shipped to clients)"}


def evaluate_ptf(dataset) -> dict:
    config = PTFConfig(server_model="ngcf", rounds=10, client_local_epochs=3,
                       server_epochs=3, server_batch_size=128, learning_rate=0.01,
                       embedding_dim=16, client_mlp_layers=(32, 16, 8), seed=SEED)
    system = PTFFedRec(dataset, config)
    system.fit()
    result = system.evaluate(k=TOP_K)
    return {"method": "PTF-FedRec(NGCF)", "recall": result.recall, "ndcg": result.ndcg,
            "kb_per_round": system.average_client_round_kilobytes(),
            "model_exposed": "no (predictions only)"}


def main() -> None:
    dataset = movielens_100k(RngFactory(SEED).spawn("dataset"), scale=0.1)
    print(f"Dataset: {dataset}\n")

    rows = [evaluate_centralized(dataset)]
    for name in ("FCF", "FedMF", "MetaMF"):
        rows.append(evaluate_baseline(dataset, name))
    rows.append(evaluate_ptf(dataset))

    header = f"{'Method':<20} {'Recall@20':>10} {'NDCG@20':>10} {'KB/client/round':>16}  Server model exposed?"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['method']:<20} {row['recall']:>10.4f} {row['ndcg']:>10.4f} "
              f"{row['kb_per_round']:>16.2f}  {row['model_exposed']}")

    print("\nTakeaway: PTF-FedRec approaches the centralized ceiling while its")
    print("communication stays in the kilobyte range and the server model never")
    print("leaves the server.")


if __name__ == "__main__":
    main()

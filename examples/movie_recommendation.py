"""Movie recommendation scenario: every paradigm through one entry point.

Reproduces the spirit of the paper's Table III on a small MovieLens-like
dataset: how much ranking quality does each training regime deliver, and
what does it cost in communication?  Because every paradigm is registered
in the trainer registry, the whole comparison is a single loop over
trainer names — the spec and the result schema are identical for all of
them.

* ``centralized`` NGCF — the ceiling: one party sees all raw data.
* ``fcf`` / ``fedmf`` / ``metamf`` — traditional parameter-transmission
  FedRecs: raw data stays on devices but the model (and megabytes of
  parameters per round) are exposed to every participant.
* ``ptf`` (NGCF server) — the paper's framework: raw data stays on devices
  AND the server model stays hidden; only kilobytes of predictions move.

Run with::

    PYTHONPATH=src python examples/movie_recommendation.py
"""

from __future__ import annotations

import repro
from repro.data import movielens_100k
from repro.utils import RngFactory

TOP_K = 20
SEED = 7

LABELS = {
    "centralized": "Centralized NGCF",
    "fcf": "FCF",
    "fedmf": "FedMF",
    "metamf": "MetaMF",
    "ptf": "PTF-FedRec(NGCF)",
}
EXPOSURE = {
    "centralized": "n/a (no federation)",
    "fcf": "yes (parameters shipped to clients)",
    "fedmf": "yes (parameters shipped to clients)",
    "metamf": "yes (parameters shipped to clients)",
    "ptf": "no (predictions only)",
}


def spec_for(trainer: str) -> repro.ExperimentSpec:
    """One spec per paradigm; only the round structure differs at mini scale."""
    spec = repro.ExperimentSpec(
        trainer=trainer,
        seed=SEED,
        model={"server_model": "ngcf", "embedding_dim": 16,
               "client_mlp_layers": (32, 16, 8)},
        protocol={"rounds": 10, "client_local_epochs": 3, "server_epochs": 3,
                  "server_batch_size": 128, "learning_rate": 0.01},
        evaluation={"k": TOP_K},
    )
    if trainer == "centralized":
        # 30 epochs with a little L2, matching the centralized baselines.
        return spec.replace(rounds=30, server_batch_size=256, l2_weight=5e-4)
    if trainer in ("fcf", "fedmf", "metamf"):
        return spec.replace(client_local_epochs=2)
    return spec


def main() -> None:
    dataset = movielens_100k(RngFactory(SEED).spawn("dataset"), scale=0.1)
    print(f"Dataset: {dataset}\n")

    header = (f"{'Method':<20} {'Recall@20':>10} {'NDCG@20':>10} "
              f"{'KB/client/round':>16}  Server model exposed?")
    print(header)
    print("-" * len(header))
    for trainer in ("centralized", "fcf", "fedmf", "metamf", "ptf"):
        result = repro.run(spec_for(trainer), dataset)
        kb = result.communication.average_client_round_kilobytes
        print(f"{LABELS[trainer]:<20} {result.final.recall:>10.4f} "
              f"{result.final.ndcg:>10.4f} {kb:>16.2f}  {EXPOSURE[trainer]}")

    print("\nTakeaway: PTF-FedRec approaches the centralized ceiling while its")
    print("communication stays in the kilobyte range and the server model never")
    print("leaves the server.")


if __name__ == "__main__":
    main()

"""Privacy audit: how much can a curious server infer from the uploads?

Reproduces the paper's Table V scenario as a runnable script.  A client's
uploaded prediction dataset is attacked with the "Top Guess Attack" (the
server guesses the top-scoring 20% of uploaded items as the user's true
positives) under four defenses:

* no defense (upload predictions for every trained item),
* local differential privacy (Laplace noise on the scores),
* sampling (random β fraction of positives, random γ negative ratio),
* sampling + swapping (the paper's full mechanism).

Each defense is one flat override on a shared :class:`repro.ExperimentSpec`;
:func:`repro.run` returns the attack F1 (``result.privacy``) next to the
ranking metrics (``result.final``), i.e. the privacy/utility trade-off.

Run with::

    PYTHONPATH=src python examples/privacy_audit.py
"""

from __future__ import annotations

import repro
from repro.data import movielens_100k
from repro.utils import RngFactory

DEFENSES = ("none", "ldp", "sampling", "sampling+swapping")
LABELS = {
    "none": "No Defense",
    "ldp": "LDP (Laplace noise)",
    "sampling": "Sampling",
    "sampling+swapping": "Sampling + Swapping",
}

BASE_SPEC = repro.ExperimentSpec(
    trainer="ptf",
    seed=13,
    model={"server_model": "ngcf", "embedding_dim": 16, "client_mlp_layers": (32, 16, 8)},
    protocol={"rounds": 6, "client_local_epochs": 3, "server_epochs": 3,
              "server_batch_size": 128, "learning_rate": 0.01},
    privacy={"audit_guess_ratio": 0.2},
    evaluation={"k": 20},
)


def run_defense(dataset, defense: str) -> dict:
    result = repro.run(BASE_SPEC.replace(defense=defense), dataset)
    return {
        "f1": result.privacy.mean_f1,
        "ndcg": result.final.ndcg,
        "clients": result.privacy.num_clients,
    }


def main() -> None:
    dataset = movielens_100k(RngFactory(13).spawn("dataset"), scale=0.1)
    print(f"Dataset: {dataset}\n")
    print(f"{'Defense':<24} {'Attack F1 (lower=better)':>26} {'NDCG@20 (higher=better)':>25}")
    print("-" * 78)
    results = {}
    for defense in DEFENSES:
        results[defense] = run_defense(dataset, defense)
        row = results[defense]
        print(f"{LABELS[defense]:<24} {row['f1']:>26.4f} {row['ndcg']:>25.4f}")

    base = results["none"]
    print("\nCost-effectiveness (ΔF1 / ΔNDCG versus no defense, higher = cheaper protection):")
    for defense in ("ldp", "sampling", "sampling+swapping"):
        delta_f1 = base["f1"] - results[defense]["f1"]
        delta_ndcg = max(base["ndcg"] - results[defense]["ndcg"], 1e-4)
        print(f"  {LABELS[defense]:<24} {delta_f1 / delta_ndcg:8.1f}")

    print("\nTakeaway: the undefended upload leaks the user's positives almost")
    print("perfectly; sampling (and swapping) remove most of that leakage at a")
    print("fraction of the utility cost of Laplace noise.")


if __name__ == "__main__":
    main()
